// psme::core — refcounted ownership of a policy blob's backing bytes.
//
// The zero-copy loader (core/policy_blob.h, format v2) turns a blob into
// a CompiledPolicyImage whose entry array, index tables, mode table and
// name/meta arenas are VIEWS into the blob's own bytes. Something must
// therefore own those bytes for as long as any image (or the SidTable
// attached over the name arena) references them — across FleetBoot
// update swaps, delta applies that still read the base image, and
// evaluator rebuilds. PolicyBuffer is that owner: an immutable,
// shared_ptr-managed byte buffer backed either by the heap or by a
// read-only mmap of a blob file (with a plain read() fallback where mmap
// is unavailable). Everyone who borrows from the buffer holds the
// shared_ptr; the mapping is released exactly when the last borrower
// drops it.
//
// The buffer start is guaranteed 8-byte aligned (operator new and mmap
// both give at least that), which is what lets the v2 loader reinterpret
// aligned sections in place — see DESIGN.md "Zero-copy image views".
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace psme::core {

class PolicyBuffer {
 public:
  /// Wraps an existing byte vector without copying (the OTA receive
  /// path: the bytes were already read into a vector).
  [[nodiscard]] static std::shared_ptr<const PolicyBuffer> take(
      std::vector<std::byte> bytes);

  /// Copies `bytes` into a fresh heap buffer. Used when the caller only
  /// has a non-owning span (PolicyBlobReader::load over a span) — the
  /// copy is one memcpy of the whole blob, after which the image borrows.
  [[nodiscard]] static std::shared_ptr<const PolicyBuffer> copy_of(
      std::span<const std::byte> bytes);

  /// Maps `path` read-only via mmap; falls back to a whole-file read()
  /// into the heap when mapping is unavailable (non-POSIX host, empty
  /// file, special filesystem). Returns nullptr and fills `*error` (when
  /// non-null) if the file cannot be opened, sized, or read at all.
  [[nodiscard]] static std::shared_ptr<const PolicyBuffer> map_file(
      const std::string& path, std::string* error = nullptr);

  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    if (map_ != nullptr) {
      return {static_cast<const std::byte*>(map_), size_};
    }
    return owned_;
  }

  /// True when the bytes live in a file mapping rather than on the heap.
  [[nodiscard]] bool file_mapped() const noexcept { return map_ != nullptr; }

  PolicyBuffer(const PolicyBuffer&) = delete;
  PolicyBuffer& operator=(const PolicyBuffer&) = delete;
  ~PolicyBuffer();

 private:
  PolicyBuffer() = default;

  std::vector<std::byte> owned_;  // heap-backed storage (map_ == nullptr)
  void* map_ = nullptr;           // mmap base when file-backed
  std::size_t size_ = 0;          // mapped length
};

}  // namespace psme::core
