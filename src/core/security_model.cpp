#include "core/security_model.h"

#include <sstream>

#include "report/table.h"

namespace psme::core {

std::vector<threat::ThreatId> SecurityModel::uncovered_threats() const {
  std::vector<threat::ThreatId> uncovered;
  for (const auto& t : model_.threats()) {
    if (t.recommended_policy == Permission::kNone) continue;
    bool covered = false;
    for (const auto& rule : policies_.rules()) {
      if (rule.rationale.find(t.id.value) != std::string::npos) {
        covered = true;
        break;
      }
    }
    if (!covered) uncovered.push_back(t.id);
  }
  return uncovered;
}

std::string SecurityModel::render_threat_table() const {
  report::TextTable table({"Critical Asset", "Modes", "Entry Points",
                           "Potential Threat", "STRIDE", "DREAD (Avg.)",
                           "Policy"});
  for (const threat::Threat* t : model_.prioritised()) {
    const threat::Asset* asset = model_.find_asset(t->asset);
    std::string eps;
    for (std::size_t i = 0; i < t->entry_points.size(); ++i) {
      if (i != 0) eps += ", ";
      const threat::EntryPoint* ep = model_.find_entry_point(t->entry_points[i]);
      eps += (ep != nullptr) ? ep->name : t->entry_points[i].value;
    }
    std::string modes;
    for (std::size_t i = 0; i < t->modes.size(); ++i) {
      if (i != 0) modes += ", ";
      modes += t->modes[i].value;
    }
    table.add(asset != nullptr ? asset->name : t->asset.value,
              modes.empty() ? std::string("all") : modes, eps, t->title,
              t->stride.letters(), t->dread.to_string(),
              std::string(threat::to_string(t->recommended_policy)));
  }
  return table.render();
}

std::string SecurityModel::render() const {
  std::ostringstream out;
  out << "# Security Model: " << model_.use_case() << "\n\n";

  out << "## Assets\n\n";
  for (const auto& a : model_.assets()) {
    out << "- **" << a.name << "** (`" << a.id.value << "`): " << a.description
        << '\n';
  }

  out << "\n## Entry Points\n\n";
  for (const auto& e : model_.entry_points()) {
    out << "- **" << e.name << "** (`" << e.id.value << "`)"
        << (e.remote ? " [remote]" : "") << ": " << e.description << '\n';
  }

  out << "\n## Operational Modes\n\n";
  for (const auto& m : model_.modes()) {
    out << "- **" << m.name << "** (`" << m.id.value << "`): " << m.description
        << '\n';
  }

  out << "\n## Threats (prioritised by DREAD)\n\n";
  out << render_threat_table();

  out << "\n## Derived Policy Set (" << policies_.name() << " v"
      << policies_.version() << ", "
      << (policies_.default_allow() ? "default-allow" : "default-deny")
      << ")\n\n";
  for (const auto& rule : policies_.rules()) {
    out << "- `" << rule.to_string() << "`  — rationale: " << rule.rationale
        << '\n';
  }

  const auto uncovered = uncovered_threats();
  out << "\n## Coverage\n\n";
  if (uncovered.empty()) {
    out << "All rated threats are countered by at least one policy rule.\n";
  } else {
    out << "UNCOVERED threats (policy required but no rule cites them):\n";
    for (const auto& id : uncovered) out << "- " << id.value << '\n';
  }
  return out.str();
}

}  // namespace psme::core
