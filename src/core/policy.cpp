#include "core/policy.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "core/policy_image.h"

namespace psme::core {

std::string_view to_string(AccessType t) noexcept {
  return t == AccessType::kRead ? "read" : "write";
}

std::string AccessRequest::to_string() const {
  std::ostringstream out;
  out << subject << " " << core::to_string(access) << " " << object;
  if (!mode.value.empty()) out << " [mode=" << mode.value << "]";
  return out.str();
}

Decision Decision::allow(std::string rule_id, std::string reason) {
  return Decision{true, std::move(rule_id), std::move(reason)};
}

Decision Decision::deny(std::string rule_id, std::string reason) {
  return Decision{false, std::move(rule_id), std::move(reason)};
}

bool PolicyRule::matches(const AccessRequest& request) const noexcept {
  if (subject != "*" && subject != request.subject) return false;
  if (object != "*" && object != request.object) return false;
  if (!modes.empty() && !request.mode.value.empty()) {
    if (std::find(modes.begin(), modes.end(), request.mode) == modes.end()) {
      return false;
    }
  }
  // A mode-conditional rule does not match a mode-less request unless the
  // caller opted out of mode tracking entirely (empty request mode matches
  // everything — the engine cannot know the mode, so the rule applies).
  return true;
}

int PolicyRule::specificity() const noexcept {
  return (subject != "*" ? 1 : 0) + (object != "*" ? 1 : 0);
}

std::string PolicyRule::to_string() const {
  std::ostringstream out;
  out << id << ": " << subject << " -> " << object << " = "
      << threat::to_string(permission);
  if (!modes.empty()) {
    out << " when {";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (i != 0) out << ',';
      out << modes[i].value;
    }
    out << '}';
  }
  out << " prio=" << priority;
  return out.str();
}

void PolicySet::add_rule(PolicyRule rule) {
  if (rule.id.empty()) {
    throw std::invalid_argument("PolicySet::add_rule: empty rule id");
  }
  const bool duplicate =
      std::any_of(rules_.begin(), rules_.end(),
                  [&](const PolicyRule& r) { return r.id == rule.id; });
  if (duplicate) {
    throw std::invalid_argument("PolicySet::add_rule: duplicate rule id '" +
                                rule.id + "'");
  }
  rules_.push_back(std::move(rule));
  invalidate();
}

bool PolicySet::remove_rule(std::string_view rule_id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [&](const PolicyRule& r) { return r.id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  invalidate();
  return true;
}

std::uint64_t PolicySet::name_hash(std::string_view name) noexcept {
  return mac::fnv1a(name);
}

void PolicySet::invalidate() noexcept {
  image_.reset();
#ifndef NDEBUG
  // A mutation implies the caller holds exclusive access again; the next
  // evaluation re-pins whichever thread performs it.
  eval_pin_.id = std::thread::id{};
#endif
}

void PolicySet::assert_single_thread() const noexcept {
#ifndef NDEBUG
  if (eval_pin_.id == std::thread::id{}) {
    eval_pin_.id = std::this_thread::get_id();
  }
  assert(eval_pin_.id == std::this_thread::get_id() &&
         "PolicySet lazy-compile paths are single-threaded by design "
         "(DESIGN.md §3): they write through mutable members");
#endif
}

const CompiledPolicyImage& PolicySet::ensure_image() const {
  // Fast path: once the image exists it is immutable and evaluation is a
  // pure const read — safe from any number of threads, provided the
  // compile happened-before they started (DESIGN.md "Concurrency model").
  // Only the lazy COMPILE writes through the mutable members, so only it
  // carries the debug single-thread pin.
  if (image_ != nullptr) return *image_;
  assert_single_thread();
  if (sids_ == nullptr) sids_ = std::make_shared<mac::SidTable>();
  image_ = std::make_shared<const CompiledPolicyImage>(
      CompiledPolicyImage::from_policy_set(*this, sids_));
  return *image_;
}

const CompiledPolicyImage& PolicySet::image() const { return ensure_image(); }

std::shared_ptr<const CompiledPolicyImage> PolicySet::image_ptr() const {
  ensure_image();
  return image_;
}

const std::shared_ptr<mac::SidTable>& PolicySet::sid_table() const {
  assert_single_thread();  // lazy creation writes through a mutable member
  if (sids_ == nullptr) sids_ = std::make_shared<mac::SidTable>();
  return sids_;
}

void PolicySet::bind_sid_table(std::shared_ptr<mac::SidTable> sids) {
  if (sids == nullptr) {
    throw std::invalid_argument("PolicySet::bind_sid_table: null table");
  }
  sids_ = std::move(sids);
  invalidate();
}

SidRequest PolicySet::resolve(const AccessRequest& request) const {
  return ensure_image().resolve(request);
}

Decision PolicySet::evaluate(const SidRequest& request) const {
  return ensure_image().evaluate(request);
}

Decision PolicySet::evaluate(const AccessRequest& request) const {
  // String shim: resolve the names once (transparent, non-allocating
  // lookups) and delegate to the SID-native image.
  const CompiledPolicyImage& img = ensure_image();
  return img.evaluate(img.resolve(request));
}

void PolicySet::merge(const PolicySet& other) {
  for (const auto& rule : other.rules()) add_rule(rule);
}

std::string PolicySet::serialize() const {
  std::ostringstream out;
  out << "policyset " << name_ << " v" << version_
      << " default=" << (default_allow_ ? "allow" : "deny") << '\n';
  for (const auto& rule : rules_) out << rule.to_string() << '\n';
  return out.str();
}

std::uint64_t PolicySet::fingerprint() const noexcept {
  // FNV-1a 64-bit over the canonical serialisation.
  return name_hash(serialize());
}

Decision SimplePolicyEngine::evaluate(const AccessRequest& request) {
  ++evaluations_;
  Decision d = set_.evaluate(request);
  if (!d.allowed) ++denials_;
  return d;
}

}  // namespace psme::core
