#include "core/policy.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace psme::core {

std::string_view to_string(AccessType t) noexcept {
  return t == AccessType::kRead ? "read" : "write";
}

std::string AccessRequest::to_string() const {
  std::ostringstream out;
  out << subject << " " << core::to_string(access) << " " << object;
  if (!mode.value.empty()) out << " [mode=" << mode.value << "]";
  return out.str();
}

Decision Decision::allow(std::string rule_id, std::string reason) {
  return Decision{true, std::move(rule_id), std::move(reason)};
}

Decision Decision::deny(std::string rule_id, std::string reason) {
  return Decision{false, std::move(rule_id), std::move(reason)};
}

bool PolicyRule::matches(const AccessRequest& request) const noexcept {
  if (subject != "*" && subject != request.subject) return false;
  if (object != "*" && object != request.object) return false;
  if (!modes.empty() && !request.mode.value.empty()) {
    if (std::find(modes.begin(), modes.end(), request.mode) == modes.end()) {
      return false;
    }
  }
  // A mode-conditional rule does not match a mode-less request unless the
  // caller opted out of mode tracking entirely (empty request mode matches
  // everything — the engine cannot know the mode, so the rule applies).
  return true;
}

int PolicyRule::specificity() const noexcept {
  return (subject != "*" ? 1 : 0) + (object != "*" ? 1 : 0);
}

std::string PolicyRule::to_string() const {
  std::ostringstream out;
  out << id << ": " << subject << " -> " << object << " = "
      << threat::to_string(permission);
  if (!modes.empty()) {
    out << " when {";
    for (std::size_t i = 0; i < modes.size(); ++i) {
      if (i != 0) out << ',';
      out << modes[i].value;
    }
    out << '}';
  }
  out << " prio=" << priority;
  return out.str();
}

void PolicySet::add_rule(PolicyRule rule) {
  if (rule.id.empty()) {
    throw std::invalid_argument("PolicySet::add_rule: empty rule id");
  }
  const bool duplicate =
      std::any_of(rules_.begin(), rules_.end(),
                  [&](const PolicyRule& r) { return r.id == rule.id; });
  if (duplicate) {
    throw std::invalid_argument("PolicySet::add_rule: duplicate rule id '" +
                                rule.id + "'");
  }
  rules_.push_back(std::move(rule));
  if (index_valid_) {
    // Appending keeps existing indices stable; extend the bucket in place.
    const PolicyRule& added = rules_.back();
    index_[pair_key(name_hash(added.subject), name_hash(added.object))]
        .push_back(static_cast<std::uint32_t>(rules_.size() - 1));
  }
}

bool PolicySet::remove_rule(std::string_view rule_id) {
  const auto it = std::find_if(rules_.begin(), rules_.end(),
                               [&](const PolicyRule& r) { return r.id == rule_id; });
  if (it == rules_.end()) return false;
  rules_.erase(it);
  index_valid_ = false;  // indices after the erased rule shifted
  return true;
}

std::uint64_t PolicySet::name_hash(std::string_view name) noexcept {
  // FNV-1a 64-bit.
  std::uint64_t hash = 0xCBF29CE484222325ULL;
  for (const unsigned char ch : name) {
    hash ^= ch;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t PolicySet::pair_key(std::uint64_t subject_hash,
                                  std::uint64_t object_hash) noexcept {
  // Asymmetric mix so (a, b) and (b, a) land in different buckets.
  return subject_hash ^ (object_hash * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL);
}

void PolicySet::rebuild_index() const {
  index_.clear();
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    index_[pair_key(name_hash(rules_[i].subject), name_hash(rules_[i].object))]
        .push_back(i);
  }
  index_valid_ = true;
}

Decision PolicySet::evaluate(const AccessRequest& request) const {
  if (!index_valid_) rebuild_index();

  // A rule is bucketed under its literal (subject, object) pair, so the
  // candidates for a request are exactly the four wildcard combinations.
  const std::uint64_t subject_hash = name_hash(request.subject);
  const std::uint64_t object_hash = name_hash(request.object);
  static const std::uint64_t wildcard_hash = name_hash("*");
  const std::uint64_t probes[4] = {
      pair_key(subject_hash, object_hash),
      pair_key(subject_hash, wildcard_hash),
      pair_key(wildcard_hash, object_hash),
      pair_key(wildcard_hash, wildcard_hash),
  };

  const PolicyRule* best = nullptr;
  std::uint32_t best_index = 0;
  for (const std::uint64_t key : probes) {
    const auto bucket = index_.find(key);
    if (bucket == index_.end()) continue;
    for (const std::uint32_t i : bucket->second) {
      const PolicyRule& rule = rules_[i];
      if (!rule.matches(request)) continue;
      // Priority wins; ties break on specificity, then insertion order
      // (lowest index = first added) — identical to the former full scan.
      if (best == nullptr || rule.priority > best->priority ||
          (rule.priority == best->priority &&
           rule.specificity() > best->specificity()) ||
          (rule.priority == best->priority &&
           rule.specificity() == best->specificity() && i < best_index)) {
        best = &rule;
        best_index = i;
      }
    }
  }
  if (best == nullptr) {
    return default_allow_
               ? Decision::allow("", "no matching rule; default allow")
               : Decision::deny("", "no matching rule; default deny");
  }
  if (permits(best->permission, request.access)) {
    return Decision::allow(best->id, best->to_string());
  }
  return Decision::deny(best->id,
                        "permission " + std::string(threat::to_string(best->permission)) +
                            " does not include " +
                            std::string(core::to_string(request.access)));
}

void PolicySet::merge(const PolicySet& other) {
  for (const auto& rule : other.rules()) add_rule(rule);
}

std::string PolicySet::serialize() const {
  std::ostringstream out;
  out << "policyset " << name_ << " v" << version_
      << " default=" << (default_allow_ ? "allow" : "deny") << '\n';
  for (const auto& rule : rules_) out << rule.to_string() << '\n';
  return out.str();
}

std::uint64_t PolicySet::fingerprint() const noexcept {
  // FNV-1a 64-bit over the canonical serialisation.
  return name_hash(serialize());
}

Decision SimplePolicyEngine::evaluate(const AccessRequest& request) {
  ++evaluations_;
  Decision d = set_.evaluate(request);
  if (!d.allowed) ++denials_;
  return d;
}

}  // namespace psme::core
