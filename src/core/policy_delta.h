// psme::core — the delta OTA channel: fingerprint-anchored binary policy
// deltas.
//
// PR 4's persistent blob gave the fleet a zero-recompile boot, but its
// OTA channel resends the ENTIRE sealed image even when core::policy_diff
// knows only a handful of rules changed. For a fleet of millions behind
// narrow in-vehicle links, the update that matters is (base fingerprint,
// delta): a compact edit script from the policy the vehicle is already
// running to the policy the OEM wants it to run. This module is that
// channel.
//
// A delta is anchored to the BASE image's fingerprint(): the writer
// records it, and apply() refuses to run against any other image — a
// delta can never be replayed onto the wrong base and silently produce a
// franken-policy. The payload encodes the target as an edit script over
// the base's packed SID-space entries (copy / skip / insert / patch, in
// entry order), the target's mode table, the target's image name /
// version / default flag, and the SID-table extension: every name the
// target interned beyond the base's anchored prefix, in SID order
// (SID-prefix-compatible extension ONLY — a delta cannot renumber the
// base's identities, exactly the blob loader's replay rule).
//
// apply(base, delta) reconstructs a sealed CompiledPolicyImage that is
// byte-identical to compiling the target policy directly against the
// same SID prefix: fingerprint-equal (cross-checked against the header's
// recorded target fingerprint — the final gate) and decision-identical
// (test-pinned across shuffled batch sweeps by the differential harness
// in tests/test_policy_delta.cpp). The applied image owns a FRESH
// SidTable built from the base's anchored prefix plus the carried
// extension, so a vehicle whose runtime table grew (fleet labels) still
// applies cleanly — the evaluator re-resolves after the swap, the same
// contract as a full-blob update.
//
// Trust boundary: deltas arrive over the air, and a malformed delta can
// brick or silently WEAKEN a vehicle's enforcement. Same discipline as
// the blob (shared machinery, core/wire_format.h): every count and
// length is bounds-checked against the delta's own size BEFORE any
// allocation, every header field is individually validated (anchors
// recomputed from the base, the SID-table extension hashed, the final
// image fingerprint cross-checked), and flipping ANY single byte of a
// delta is rejected with a PolicyDeltaError — exhaustively test-pinned,
// never UB, never a wrong image.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy_image.h"
#include "core/wire_format.h"
#include "mac/sid_table.h"

namespace psme::core {

/// Rejection of a malformed, truncated, tampered, wrong-base or
/// incompatible delta. Same PolicyWireError taxonomy as PolicyBlobError:
/// one catch handles the OTA boundary, the class tells which artefact
/// failed.
class PolicyDeltaError : public PolicyWireError {
 public:
  using PolicyWireError::PolicyWireError;
};

/// Current on-wire delta format version. Bump on any layout change;
/// readers reject versions they do not speak.
inline constexpr std::uint32_t kPolicyDeltaFormatVersion = 1;

/// The 8 magic bytes every delta starts with ("PSMEPDLT").
inline constexpr std::size_t kPolicyDeltaMagicSize = 8;
[[nodiscard]] std::span<const std::byte, kPolicyDeltaMagicSize>
policy_delta_magic() noexcept;

/// Edit-script composition of a delta, surfaced by the writer (release
/// tooling logs it next to core::PolicyDiff::render()) and recomputable
/// from the wire by probe-level tooling.
struct PolicyDeltaStats {
  std::uint32_t copied = 0;   // base entries carried over verbatim
  std::uint32_t added = 0;    // entries the target introduces
  std::uint32_t removed = 0;  // base entries the target drops
  std::uint32_t changed = 0;  // base entries replaced in place (patch)
};

/// Header fields surfaced without applying (OTA tooling: log what
/// arrived, match it to the staged base, decide). probe() validates the
/// shared wire prefix — magic, version, endianness, size, payload
/// checksum — but not the payload structure; only apply() against the
/// real base proves a delta usable.
struct PolicyDeltaInfo {
  std::uint32_t format_version = 0;
  std::uint64_t base_fingerprint = 0;    // anchor: required base image
  std::uint64_t target_fingerprint = 0;  // the image apply() must produce
  std::uint64_t base_version = 0;
  std::uint64_t target_version = 0;
  std::uint32_t base_entry_count = 0;
  std::uint32_t target_entry_count = 0;
  std::uint32_t op_count = 0;
  std::uint32_t new_sid_count = 0;  // names appended beyond the anchor
  std::uint64_t total_size = 0;     // whole delta, header included
};

/// A fresh SidTable whose interning history replays `sids`' first
/// `count` names in SID order — the prefix replica an OEM compiles a
/// target policy against so the result lives in the fleet's SID space
/// without mutating the deployed base image's own table. Throws
/// std::out_of_range when `count` exceeds the table.
[[nodiscard]] std::shared_ptr<mac::SidTable> replicate_sid_prefix(
    const mac::SidTable& sids, std::size_t count);

/// Serialises the edit script from `base` to `target`. Runs at the OEM
/// (release tooling), never on a vehicle.
class PolicyDeltaWriter {
 public:
  /// The delta taking `base` to `target`: header + payload, checksummed,
  /// anchored to base.fingerprint() and carrying target.fingerprint() as
  /// the apply-side cross-check. Requires `target`'s SID space to be a
  /// prefix-compatible extension of `base`'s (compile the target against
  /// replicate_sid_prefix(base.sids(), base.sids().size()), or share the
  /// base's own table); anything else throws PolicyDeltaError — packed
  /// entries would otherwise denote different identities. When `stats`
  /// is non-null the edit-script composition is reported through it.
  [[nodiscard]] static std::vector<std::byte> write(
      const CompiledPolicyImage& base, const CompiledPolicyImage& target,
      PolicyDeltaStats* stats = nullptr);

  /// write() to a file. Throws PolicyDeltaError when the file cannot be
  /// created or fully written.
  static void write_file(const CompiledPolicyImage& base,
                         const CompiledPolicyImage& target,
                         const std::string& path,
                         PolicyDeltaStats* stats = nullptr);
};

/// Validates a delta and applies it to a base image.
class PolicyDeltaReader {
 public:
  /// Header-only inspection; throws PolicyDeltaError on a delta whose
  /// shared wire prefix fails validation (see PolicyDeltaInfo).
  [[nodiscard]] static PolicyDeltaInfo probe(std::span<const std::byte> delta);

  /// Full validated application: checks the delta against `base` (the
  /// anchor fingerprint, entry count, referenced-SID range and version
  /// must all match the image in hand), replays the edit script, and
  /// returns a sealed image that fingerprints to exactly the header's
  /// recorded target fingerprint — byte-identical to the direct compile
  /// of the target policy. The returned image owns a fresh SidTable
  /// (base prefix + carried extension); `base` is never mutated. Throws
  /// PolicyDeltaError on any validation failure, leaving `base` fully
  /// usable.
  [[nodiscard]] static CompiledPolicyImage apply(
      const CompiledPolicyImage& base, std::span<const std::byte> delta);

  /// apply() with the delta read from a file. Throws PolicyDeltaError
  /// when the file cannot be read.
  [[nodiscard]] static CompiledPolicyImage apply_file(
      const CompiledPolicyImage& base, const std::string& path);
};

/// Server-side delta-chain composition — the campaign orchestrator's
/// catch-up path (car/campaign.h). A release pipeline emits one delta
/// per hop (v1→v2, v2→v3, ...); a vehicle several versions behind wants
/// ONE artefact. This helper replays the per-hop deltas against `base`
/// in order — every hop fully validated exactly as a vehicle would
/// validate it (anchor fingerprint, SID-table hash, final target
/// fingerprint) — and serialises the landing image as a single delta
/// anchored to `base`. The composed delta is byte-equal to the delta
/// the writer would emit against the directly compiled target, because
/// chain application reconstructs that image byte-identically
/// (test-pinned: tests/test_policy_delta.cpp delta-chain suite).
///
/// All-or-nothing: a broken chain — any hop corrupted, truncated,
/// mis-anchored or out of order — throws PolicyDeltaError from that
/// hop's validation and composes NOTHING; `base` is never touched.
/// Callers fall back to shipping the full blob. Throws
/// std::invalid_argument on an empty chain. When `stats` is non-null
/// the COMPOSED edit script (base→target, not per hop) is reported.
[[nodiscard]] std::vector<std::byte> compose_delta_chain(
    const CompiledPolicyImage& base,
    std::span<const std::span<const std::byte>> hops,
    PolicyDeltaStats* stats = nullptr);

}  // namespace psme::core
