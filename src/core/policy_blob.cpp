#include "core/policy_blob.h"

#include <array>
#include <cstring>
#include <string_view>
#include <utility>

namespace psme::core {

namespace {

// ---------------------------------------------------------------- layout
//
// All multi-byte fields are little-endian, written and read through the
// shared shift-based byte stores (core/wire_format.h) so the encoding is
// identical on any host. Fixed header (kHeaderSize bytes) opening with
// the shared 32-byte wire prefix, then the payload sections in order:
// image name, SID names, packed entries, metas, mode table, index slots,
// index spans, flat entry indices. DESIGN.md "Persistent image format"
// is the normative description.

constexpr std::array<std::byte, kPolicyBlobMagicSize> kMagic = {
    std::byte{'P'}, std::byte{'S'}, std::byte{'M'}, std::byte{'E'},
    std::byte{'P'}, std::byte{'I'}, std::byte{'M'}, std::byte{'G'}};

constexpr std::string_view kDomain = "policy blob";
constexpr std::size_t kHeaderSize = 80;
/// One packed entry on the wire: subject u32, object u32, permission u8,
/// specificity u8, 2 reserved bytes, priority i32, mode_mask u64, meta
/// u32.
constexpr std::size_t kEntryRecordSize = 28;

// Header field offsets (bytes from blob start). Offsets 0..31 are the
// shared wire prefix (wire::kOffMagic .. wire::kOffPayloadHash).
constexpr std::size_t kOffFingerprint = 32;
constexpr std::size_t kOffImageVersion = 40;
constexpr std::size_t kOffSidCount = 48;
constexpr std::size_t kOffEntryCount = 52;
constexpr std::size_t kOffModeCount = 56;
constexpr std::size_t kOffSlotCount = 60;
constexpr std::size_t kOffFlatCount = 64;
constexpr std::size_t kOffNameLen = 68;
constexpr std::size_t kOffWildcardSid = 72;
constexpr std::size_t kOffDefaultAllow = 76;  // u8; bytes 77..79 reserved 0

[[noreturn]] void reject(const std::string& what) {
  wire::reject<PolicyBlobError>(kDomain, what);
}

using wire::load_u32;
using wire::load_u64;
using wire::put_str;
using wire::put_u32;
using wire::put_u64;
using wire::store_u32;
using wire::store_u64;

using Cursor = wire::Cursor<PolicyBlobError>;

struct Header {
  std::uint32_t format_version = 0;
  std::uint64_t total_size = 0;
  std::uint64_t payload_hash = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t image_version = 0;
  std::uint32_t sid_count = 0;
  std::uint32_t entry_count = 0;
  std::uint32_t mode_count = 0;
  std::uint32_t slot_count = 0;
  std::uint32_t flat_count = 0;
  std::uint32_t name_len = 0;
  mac::Sid wildcard_sid = mac::kNullSid;
  bool default_allow = false;
};

/// Validates everything the fixed header can prove on its own: the
/// shared wire prefix (magic, version, endianness, exact size, payload
/// checksum — core/wire_format.h), then the blob-specific fields.
[[nodiscard]] Header validate_header(std::span<const std::byte> blob) {
  wire::validate_prefix<PolicyBlobError>(blob, kMagic,
                                         kPolicyBlobFormatVersion,
                                         kHeaderSize, kDomain);
  Header h;
  h.format_version = kPolicyBlobFormatVersion;
  h.total_size = blob.size();
  h.payload_hash = load_u64(blob.data() + wire::kOffPayloadHash);
  h.fingerprint = load_u64(blob.data() + kOffFingerprint);
  h.image_version = load_u64(blob.data() + kOffImageVersion);
  h.sid_count = load_u32(blob.data() + kOffSidCount);
  h.entry_count = load_u32(blob.data() + kOffEntryCount);
  h.mode_count = load_u32(blob.data() + kOffModeCount);
  h.slot_count = load_u32(blob.data() + kOffSlotCount);
  h.flat_count = load_u32(blob.data() + kOffFlatCount);
  h.name_len = load_u32(blob.data() + kOffNameLen);
  h.wildcard_sid = load_u32(blob.data() + kOffWildcardSid);
  const std::uint8_t allow = std::to_integer<std::uint8_t>(
      blob[kOffDefaultAllow]);
  if (allow > 1) reject("default-allow flag is neither 0 nor 1");
  h.default_allow = allow == 1;
  // Reserved header bytes must be zero: with every other header byte
  // validated and the whole payload checksummed, this closes the last
  // gap — ANY single corrupted byte in a blob is rejected (test-pinned).
  for (std::size_t i = 1; i < 4; ++i) {
    if (blob[kOffDefaultAllow + i] != std::byte{0}) {
      reject("reserved header bytes not zero");
    }
  }
  return h;
}

}  // namespace

std::span<const std::byte, kPolicyBlobMagicSize> policy_blob_magic() noexcept {
  return kMagic;
}

// ------------------------------------------------------------------ writer

std::vector<std::byte> PolicyBlobWriter::write(
    const CompiledPolicyImage& image) {
  const mac::SidTable& sids = image.sids();

  std::vector<std::byte> payload;
  // Generous reservation: fixed-size sections plus a guess for strings.
  payload.reserve(128 + sids.size() * 24 + image.entries_.size() * 128 +
                  image.slot_keys_.size() * 16);

  // Image name, then every interned name in SID order (SID i == position
  // i-1): replaying intern() over this list reconstructs the exact table.
  for (const char ch : image.name_) {
    payload.push_back(std::byte(static_cast<unsigned char>(ch)));
  }
  for (mac::Sid sid = 1; sid <= sids.size(); ++sid) {
    put_str(payload, sids.name_of(sid));
  }

  // Packed entries, field by field (no struct memcpy: padding bytes and
  // compiler layout never reach the wire — the interop guarantee).
  for (const CompiledPolicyImage::Entry& entry : image.entries_) {
    put_u32(payload, entry.subject);
    put_u32(payload, entry.object);
    payload.push_back(std::byte(static_cast<unsigned char>(entry.permission)));
    payload.push_back(std::byte(entry.specificity));
    payload.push_back(std::byte{0});  // reserved
    payload.push_back(std::byte{0});
    put_u32(payload, static_cast<std::uint32_t>(entry.priority));
    put_u64(payload, entry.mode_mask);
    put_u32(payload, entry.meta);
  }

  // Audit metas: rule id + the allow reason. The two permission-mismatch
  // deny texts are derived (make_meta) — identical bytes, never stored.
  for (const CompiledPolicyImage::Meta& meta : image.metas_) {
    put_str(payload, meta.id);
    put_str(payload, meta.allow.reason);
  }

  for (const mac::Sid mode : image.mode_sids_) put_u32(payload, mode);

  // The sealed open-addressing index, verbatim: the loader validates it
  // (bounds, reachability, exact correspondence to the entries) instead
  // of rebuilding it.
  for (const std::uint64_t key : image.slot_keys_) put_u64(payload, key);
  for (const auto& [offset, count] : image.slot_spans_) {
    put_u32(payload, offset);
    put_u32(payload, count);
  }
  for (const std::uint32_t i : image.flat_index_) put_u32(payload, i);

  std::vector<std::byte> blob(kHeaderSize);
  std::memcpy(blob.data() + wire::kOffMagic, kMagic.data(), kMagic.size());
  store_u32(blob.data() + wire::kOffFormatVersion, kPolicyBlobFormatVersion);
  store_u32(blob.data() + wire::kOffEndianTag, wire::kEndianTag);
  store_u64(blob.data() + wire::kOffTotalSize, kHeaderSize + payload.size());
  store_u64(blob.data() + wire::kOffPayloadHash, wire::hash_payload(payload));
  store_u64(blob.data() + kOffFingerprint, image.fingerprint());
  store_u64(blob.data() + kOffImageVersion, image.version_);
  store_u32(blob.data() + kOffSidCount,
            static_cast<std::uint32_t>(sids.size()));
  store_u32(blob.data() + kOffEntryCount,
            static_cast<std::uint32_t>(image.entries_.size()));
  store_u32(blob.data() + kOffModeCount,
            static_cast<std::uint32_t>(image.mode_sids_.size()));
  store_u32(blob.data() + kOffSlotCount,
            static_cast<std::uint32_t>(image.slot_keys_.size()));
  store_u32(blob.data() + kOffFlatCount,
            static_cast<std::uint32_t>(image.flat_index_.size()));
  store_u32(blob.data() + kOffNameLen,
            static_cast<std::uint32_t>(image.name_.size()));
  store_u32(blob.data() + kOffWildcardSid, image.wildcard_sid_);
  blob[kOffDefaultAllow] = std::byte(image.default_allow_ ? 1 : 0);
  blob[kOffDefaultAllow + 1] = std::byte{0};
  blob[kOffDefaultAllow + 2] = std::byte{0};
  blob[kOffDefaultAllow + 3] = std::byte{0};

  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

void PolicyBlobWriter::write_file(const CompiledPolicyImage& image,
                                  const std::string& path) {
  wire::write_file<PolicyBlobError>(write(image), path, kDomain);
}

// ------------------------------------------------------------------ reader

PolicyBlobInfo PolicyBlobReader::probe(std::span<const std::byte> blob) {
  const Header h = validate_header(blob);
  PolicyBlobInfo info;
  info.format_version = h.format_version;
  info.fingerprint = h.fingerprint;
  info.image_version = h.image_version;
  info.sid_count = h.sid_count;
  info.entry_count = h.entry_count;
  info.total_size = h.total_size;
  return info;
}

CompiledPolicyImage PolicyBlobReader::load(
    std::span<const std::byte> blob, std::shared_ptr<mac::SidTable> sids) {
  const Header h = validate_header(blob);
  if (h.mode_count > kMaxImageModes) {
    reject("mode table larger than the 64-bit mask allows");
  }
  if (h.slot_count == 0 || (h.slot_count & (h.slot_count - 1)) != 0) {
    reject("index slot count is not a power of two");
  }
  if (h.flat_count != h.entry_count) {
    reject("index covers " + std::to_string(h.flat_count) +
           " entries, image has " + std::to_string(h.entry_count));
  }
  // Every count must be payable in payload bytes BEFORE anything is
  // reserved: a crafted header must earn a rejection, not a
  // multi-gigabyte allocation (memory-exhaustion DoS on the OTA path).
  const std::size_t payload_size = blob.size() - kHeaderSize;
  if (h.name_len > payload_size || h.sid_count > payload_size / 4 ||
      h.entry_count > payload_size / kEntryRecordSize ||
      h.slot_count > payload_size / 16 || h.flat_count > payload_size / 4) {
    reject("section counts exceed the blob's own size");
  }

  Cursor cursor(blob.subspan(kHeaderSize), kDomain);

  CompiledPolicyImage image;
  // Image name: length lives in the header, bytes open the payload.
  image.name_ = cursor.raw(h.name_len);
  image.version_ = h.image_version;
  image.default_allow_ = h.default_allow;

  // SID space: replay every carried name through the interner and demand
  // the historical SID back. A fresh table trivially satisfies this; a
  // caller-provided table must be interning-prefix-compatible, anything
  // else means the packed entries would denote different identities.
  image.sids_ = sids != nullptr ? std::move(sids)
                                : std::make_shared<mac::SidTable>();
  image.sids_->reserve(h.sid_count);
  for (std::uint32_t i = 0; i < h.sid_count; ++i) {
    const std::string_view name = cursor.view();
    const mac::Sid sid = image.sids_->intern(name);
    if (sid != i + 1) {
      reject("SID space mismatch: '" + std::string(name) + "' interned to " +
             std::to_string(sid) + ", blob carries " + std::to_string(i + 1));
    }
  }
  if (h.wildcard_sid == mac::kNullSid || h.wildcard_sid > h.sid_count ||
      image.sids_->name_of(h.wildcard_sid) != "*") {
    reject("wildcard SID does not name '*'");
  }
  image.wildcard_sid_ = h.wildcard_sid;

  const auto check_sid = [&](mac::Sid sid, const char* what) {
    if (sid == mac::kNullSid || sid > h.sid_count) {
      reject(std::string(what) + " SID outside the carried table");
    }
  };

  image.entries_.reserve(h.entry_count);
  const std::byte* entry_bytes =
      cursor.take(std::size_t{h.entry_count} * kEntryRecordSize);
  for (std::uint32_t i = 0; i < h.entry_count; ++i) {
    const std::byte* at = entry_bytes + std::size_t{i} * kEntryRecordSize;
    CompiledPolicyImage::Entry entry;
    entry.subject = load_u32(at);
    entry.object = load_u32(at + 4);
    const auto permission = std::to_integer<std::uint8_t>(at[8]);
    entry.specificity = std::to_integer<std::uint8_t>(at[9]);
    entry.priority = static_cast<std::int32_t>(load_u32(at + 12));
    entry.mode_mask = load_u64(at + 16);
    entry.meta = load_u32(at + 24);
    entry.permission = static_cast<threat::Permission>(permission);

    // Per-entry validation, folded into one predicate so the accept path
    // is a single branch ((sid - 1) < count is the unsigned both-ends
    // check: kNullSid wraps). Rejection re-runs the parts for a precise
    // message — the cold path can afford it.
    const std::uint8_t specificity = static_cast<std::uint8_t>(
        (entry.subject != image.wildcard_sid_ ? 1 : 0) +
        (entry.object != image.wildcard_sid_ ? 1 : 0));
    const bool mode_bits_ok =
        h.mode_count >= 64 || (entry.mode_mask >> h.mode_count) == 0;
    if ((entry.subject - 1) >= h.sid_count || (entry.object - 1) >= h.sid_count ||
        permission > static_cast<std::uint8_t>(threat::Permission::kReadWrite) ||
        entry.specificity != specificity || !mode_bits_ok || entry.meta != i) {
      check_sid(entry.subject, "entry subject");
      check_sid(entry.object, "entry object");
      if (permission >
          static_cast<std::uint8_t>(threat::Permission::kReadWrite)) {
        reject("entry permission byte out of range");
      }
      if (entry.specificity != specificity) {
        reject("entry specificity inconsistent with its SIDs");
      }
      if (!mode_bits_ok) {
        reject("entry mode mask names bits beyond the mode table");
      }
      reject("entry/meta correspondence broken");
    }
    image.entries_.push_back(entry);
  }

  image.metas_.reserve(h.entry_count);
  for (std::uint32_t i = 0; i < h.entry_count; ++i) {
    std::string id = cursor.str();
    std::string reason = cursor.str();
    CompiledPolicyImage::emplace_meta(image.metas_, std::move(id),
                                      image.entries_[i].permission,
                                      std::move(reason));
  }

  image.mode_sids_.reserve(h.mode_count);
  for (std::uint32_t i = 0; i < h.mode_count; ++i) {
    const mac::Sid mode = cursor.u32();
    check_sid(mode, "mode");
    for (const mac::Sid seen : image.mode_sids_) {
      if (seen == mode) reject("duplicate mode SID in the mode table");
    }
    image.mode_sids_.push_back(mode);
  }

  image.slot_keys_.reserve(h.slot_count);
  const std::byte* key_bytes = cursor.take(std::size_t{h.slot_count} * 8);
  for (std::uint32_t i = 0; i < h.slot_count; ++i) {
    image.slot_keys_.push_back(load_u64(key_bytes + std::size_t{i} * 8));
  }
  image.slot_spans_.reserve(h.slot_count);
  const std::byte* span_bytes = cursor.take(std::size_t{h.slot_count} * 8);
  for (std::uint32_t i = 0; i < h.slot_count; ++i) {
    image.slot_spans_.emplace_back(load_u32(span_bytes + std::size_t{i} * 8),
                                   load_u32(span_bytes + std::size_t{i} * 8 + 4));
  }
  image.flat_index_.reserve(h.flat_count);
  const std::byte* flat_bytes = cursor.take(std::size_t{h.flat_count} * 4);
  for (std::uint32_t i = 0; i < h.flat_count; ++i) {
    image.flat_index_.push_back(load_u32(flat_bytes + std::size_t{i} * 4));
  }
  if (!cursor.exhausted()) {
    reject("trailing bytes after the last section");
  }

  // Semantic index validation: the loaded open-addressing table must be
  // EXACTLY a sealed index over the loaded entries — every slot key
  // reachable by its own probe sequence, every span in bounds and keyed
  // consistently, every entry indexed exactly once in insertion order.
  // (The fingerprint does not cover the index — it is derived data — so
  // this check is what keeps a corrupted index from silently serving
  // wrong decisions or walking out of bounds.)
  {
    const std::size_t mask = image.slot_keys_.size() - 1;
    std::size_t occupied = 0;
    std::vector<bool> indexed(h.entry_count, false);
    for (std::size_t s = 0; s < image.slot_keys_.size(); ++s) {
      const std::uint64_t key = image.slot_keys_[s];
      if (key == 0) {
        if (image.slot_spans_[s] != std::pair<std::uint32_t, std::uint32_t>{
                                        0, 0}) {
          reject("empty index slot carries a non-empty span");
        }
        continue;
      }
      ++occupied;
      // The probe sequence for `key` must land on this slot before any
      // empty slot, or evaluation could never reach it.
      std::size_t probe = mac::mix_av_key(key) & mask;
      std::size_t steps = 0;
      while (probe != s) {
        if (image.slot_keys_[probe] == 0 ||
            image.slot_keys_[probe] == key ||
            ++steps > image.slot_keys_.size()) {
          reject("index slot unreachable by its probe sequence");
        }
        probe = (probe + 1) & mask;
      }
      const auto [offset, count] = image.slot_spans_[s];
      if (count == 0) reject("occupied index slot with an empty span");
      if (offset > h.flat_count || count > h.flat_count - offset) {
        reject("index span overruns the flat entry list");
      }
      std::uint32_t previous = 0;
      for (std::uint32_t c = 0; c < count; ++c) {
        const std::uint32_t e = image.flat_index_[offset + c];
        if (e >= h.entry_count) reject("index names a nonexistent entry");
        const CompiledPolicyImage::Entry& entry = image.entries_[e];
        if (CompiledPolicyImage::pair_key(entry.subject, entry.object) !=
            key) {
          reject("index slot groups an entry under the wrong key");
        }
        if (indexed[e]) reject("entry indexed twice");
        if (c > 0 && e <= previous) {
          reject("index span out of insertion order");
        }
        indexed[e] = true;
        previous = e;
      }
    }
    if (occupied == image.slot_keys_.size()) {
      reject("index has no empty slot (probe termination impossible)");
    }
    for (std::uint32_t e = 0; e < h.entry_count; ++e) {
      if (!indexed[e]) reject("entry missing from the index");
    }
  }

  image.default_allow_decision_ =
      Decision::allow("", "no matching rule; default allow");
  image.default_deny_decision_ =
      Decision::deny("", "no matching rule; default deny");

  // The final gate: the reconstructed image must fingerprint to exactly
  // what the writer recorded — the same integrity anchor the compiled
  // pipeline uses, now guarding the OTA trust boundary.
  if (image.fingerprint() != h.fingerprint) {
    reject("fingerprint mismatch (content does not match manifest)");
  }
  return image;
}

CompiledPolicyImage PolicyBlobReader::load_file(
    const std::string& path, std::shared_ptr<mac::SidTable> sids) {
  return load(wire::read_file<PolicyBlobError>(path, kDomain),
              std::move(sids));
}

}  // namespace psme::core
