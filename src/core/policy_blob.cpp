#include "core/policy_blob.h"

#include <array>
#include <bit>
#include <cstring>
#include <string_view>
#include <utility>
#include <vector>

namespace psme::core {

namespace {

// ---------------------------------------------------------------- layout
//
// All multi-byte fields are little-endian, written and read through the
// shared shift-based byte stores (core/wire_format.h) so the encoding is
// identical on any host. Two layouts share the magic and the first 80
// header bytes:
//
//  v1 (legacy, copying): 80-byte header, then tightly packed sections —
//  image name, length-prefixed SID names, 28-byte entries, length-
//  prefixed metas, mode table, index slots, index spans, flat indices.
//  Loading is a linear reconstruction pass.
//
//  v2 (zero-copy): 96-byte header, then ELEVEN sections each starting on
//  an 8-byte boundary (zero padding between), position-independent and
//  layout-identical to the in-memory image on a little-endian host:
//  image name, SID-name offsets (u32[sid_count+1]), SID-name arena, SID
//  probe slots (u32[sid_slot_count]), 32-byte entries, meta offsets
//  (u32[2*entry_count+1]), meta arena, mode table, index slot keys
//  (u64), index spans (u32 pairs), flat indices. A reader validates and
//  then VIEWS the buffer in place — zero per-element copying. Section
//  offsets are derived (never stored): the exact-packing equation
//  "offsets chain by align8 and land on total_size" is itself a
//  validation gate, so every header count is pinned by the blob size.
//  DESIGN.md "Zero-copy image views" is the normative description.

constexpr std::array<std::byte, kPolicyBlobMagicSize> kMagic = {
    std::byte{'P'}, std::byte{'S'}, std::byte{'M'}, std::byte{'E'},
    std::byte{'P'}, std::byte{'I'}, std::byte{'M'}, std::byte{'G'}};

constexpr std::string_view kDomain = "policy blob";
constexpr std::size_t kHeaderSizeV1 = 80;
constexpr std::size_t kHeaderSizeV2 = 96;
/// One packed v1 entry on the wire: subject u32, object u32, permission
/// u8, specificity u8, 2 reserved bytes, priority i32, mode_mask u64,
/// meta u32.
constexpr std::size_t kEntryRecordSizeV1 = 28;
/// One packed v2 entry on the wire — identical to the in-memory Entry
/// layout (pinned below), reserved bytes zero.
constexpr std::size_t kEntryRecordSizeV2 = 32;

using Entry = CompiledPolicyImage::Entry;
using SlotSpan = CompiledPolicyImage::SlotSpan;

// The v2 zero-copy contract: the in-memory Entry/SlotSpan ARE the wire
// records on a little-endian host. Any layout drift must fail the build,
// not corrupt a fleet.
static_assert(sizeof(Entry) == kEntryRecordSizeV2);
static_assert(alignof(Entry) == 8);
static_assert(std::is_trivially_copyable_v<Entry>);
static_assert(offsetof(Entry, subject) == 0);
static_assert(offsetof(Entry, object) == 4);
static_assert(offsetof(Entry, permission) == 8);
static_assert(offsetof(Entry, specificity) == 9);
static_assert(offsetof(Entry, reserved0) == 10);
static_assert(offsetof(Entry, reserved1) == 11);
static_assert(offsetof(Entry, priority) == 12);
static_assert(offsetof(Entry, mode_mask) == 16);
static_assert(offsetof(Entry, meta) == 24);
static_assert(offsetof(Entry, reserved2) == 28);
static_assert(sizeof(threat::Permission) == 1);
static_assert(sizeof(SlotSpan) == 8);
static_assert(std::is_trivially_copyable_v<SlotSpan>);
static_assert(offsetof(SlotSpan, offset) == 0);
static_assert(offsetof(SlotSpan, count) == 4);
static_assert(sizeof(mac::Sid) == 4);

constexpr bool kLittleEndianHost = std::endian::native == std::endian::little;

// Header field offsets (bytes from blob start), shared by both versions
// through offset 79. Offsets 0..31 are the shared wire prefix
// (wire::kOffMagic .. wire::kOffPayloadHash).
constexpr std::size_t kOffFingerprint = 32;
constexpr std::size_t kOffImageVersion = 40;
constexpr std::size_t kOffSidCount = 48;
constexpr std::size_t kOffEntryCount = 52;
constexpr std::size_t kOffModeCount = 56;
constexpr std::size_t kOffSlotCount = 60;
constexpr std::size_t kOffFlatCount = 64;
constexpr std::size_t kOffNameLen = 68;
constexpr std::size_t kOffWildcardSid = 72;
constexpr std::size_t kOffDefaultAllow = 76;  // u8; bytes 77..79 reserved 0
// v2-only header fields.
constexpr std::size_t kOffSidSlotCount = 80;
constexpr std::size_t kOffNameArenaLen = 84;
constexpr std::size_t kOffMetaArenaLen = 88;
constexpr std::size_t kOffReservedV2 = 92;  // u32, reserved 0

[[noreturn]] void reject(const std::string& what,
                         WireFault fault = WireFault::kMalformed) {
  wire::reject<PolicyBlobError>(kDomain, what, fault);
}

using wire::align8;
using wire::load_u32;
using wire::load_u64;
using wire::put_str;
using wire::put_u32;
using wire::put_u64;
using wire::store_u32;
using wire::store_u64;

using Cursor = wire::Cursor<PolicyBlobError>;

struct Header {
  std::uint32_t format_version = 0;
  std::uint64_t total_size = 0;
  std::uint64_t payload_hash = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t image_version = 0;
  std::uint32_t sid_count = 0;
  std::uint32_t entry_count = 0;
  std::uint32_t mode_count = 0;
  std::uint32_t slot_count = 0;
  std::uint32_t flat_count = 0;
  std::uint32_t name_len = 0;
  mac::Sid wildcard_sid = mac::kNullSid;
  bool default_allow = false;
  // v2 only:
  std::uint32_t sid_slot_count = 0;
  std::uint32_t name_arena_len = 0;
  std::uint32_t meta_arena_len = 0;
};

/// Derived v2 section offsets (bytes from blob start). Never stored on
/// the wire: recomputing them from the header counts and requiring the
/// chain to land exactly on total_size pins every count.
struct LayoutV2 {
  std::size_t name = 0;
  std::size_t name_offsets = 0;
  std::size_t name_arena = 0;
  std::size_t sid_slots = 0;
  std::size_t entries = 0;
  std::size_t meta_offsets = 0;
  std::size_t meta_arena = 0;
  std::size_t modes = 0;
  std::size_t slot_keys = 0;
  std::size_t slot_spans = 0;
  std::size_t flat = 0;
  std::size_t total = 0;
};

[[nodiscard]] LayoutV2 layout_v2(const Header& h) noexcept {
  LayoutV2 layout;
  std::size_t at = kHeaderSizeV2;
  const auto section = [&at](std::size_t size) {
    const std::size_t offset = at;
    at = align8(at + size);
    return offset;
  };
  layout.name = section(h.name_len);
  layout.name_offsets = section(4 * (std::size_t{h.sid_count} + 1));
  layout.name_arena = section(h.name_arena_len);
  layout.sid_slots = section(4 * std::size_t{h.sid_slot_count});
  layout.entries = section(kEntryRecordSizeV2 * std::size_t{h.entry_count});
  layout.meta_offsets = section(4 * (2 * std::size_t{h.entry_count} + 1));
  layout.meta_arena = section(h.meta_arena_len);
  layout.modes = section(4 * std::size_t{h.mode_count});
  layout.slot_keys = section(8 * std::size_t{h.slot_count});
  layout.slot_spans = section(8 * std::size_t{h.slot_count});
  layout.flat = section(4 * std::size_t{h.flat_count});
  layout.total = at;
  return layout;
}

/// Magic + minimum-length + version peek, so the reader can dispatch on
/// the layout before running the version-specific header validation.
[[nodiscard]] std::uint32_t peek_version(std::span<const std::byte> blob) {
  if (blob.size() < wire::kPrefixSize) {
    reject("truncated (smaller than the fixed header)");
  }
  if (std::memcmp(blob.data() + wire::kOffMagic, kMagic.data(),
                  kMagic.size()) != 0) {
    reject("bad magic (not a " + std::string(kDomain) + ")");
  }
  const std::uint32_t version =
      load_u32(blob.data() + wire::kOffFormatVersion);
  if (version != kPolicyBlobFormatVersionV1 &&
      version != kPolicyBlobFormatVersion) {
    reject("unsupported format version " + std::to_string(version) +
           " (reader speaks versions " +
           std::to_string(kPolicyBlobFormatVersionV1) + " and " +
           std::to_string(kPolicyBlobFormatVersion) + ")");
  }
  return version;
}

/// The header fields both versions share past the wire prefix.
void read_common_fields(std::span<const std::byte> blob, Header& h) {
  h.total_size = blob.size();
  h.payload_hash = load_u64(blob.data() + wire::kOffPayloadHash);
  h.fingerprint = load_u64(blob.data() + kOffFingerprint);
  h.image_version = load_u64(blob.data() + kOffImageVersion);
  h.sid_count = load_u32(blob.data() + kOffSidCount);
  h.entry_count = load_u32(blob.data() + kOffEntryCount);
  h.mode_count = load_u32(blob.data() + kOffModeCount);
  h.slot_count = load_u32(blob.data() + kOffSlotCount);
  h.flat_count = load_u32(blob.data() + kOffFlatCount);
  h.name_len = load_u32(blob.data() + kOffNameLen);
  h.wildcard_sid = load_u32(blob.data() + kOffWildcardSid);
  const std::uint8_t allow =
      std::to_integer<std::uint8_t>(blob[kOffDefaultAllow]);
  if (allow > 1) reject("default-allow flag is neither 0 nor 1");
  h.default_allow = allow == 1;
  // Reserved header bytes must be zero: with every other header byte
  // validated and the whole payload checksummed, this closes the last
  // gap — ANY single corrupted byte in a blob is rejected (test-pinned).
  for (std::size_t i = 1; i < 4; ++i) {
    if (blob[kOffDefaultAllow + i] != std::byte{0}) {
      reject("reserved header bytes not zero");
    }
  }
}

/// Validates everything the v1 fixed header can prove on its own.
[[nodiscard]] Header validate_header_v1(std::span<const std::byte> blob) {
  wire::validate_prefix<PolicyBlobError>(blob, kMagic,
                                         kPolicyBlobFormatVersionV1,
                                         kHeaderSizeV1, kDomain);
  Header h;
  h.format_version = kPolicyBlobFormatVersionV1;
  read_common_fields(blob, h);
  return h;
}

[[nodiscard]] constexpr bool power_of_two(std::uint32_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Validates everything the v2 fixed header plus the section-packing
/// equation can prove — all of it O(1) in policy size. This is the
/// ENTIRE structural gate of a kSealedStore attach; kUntrusted layers
/// the checksum (via validate_prefix), the semantic content passes and
/// the fingerprint gate on top.
[[nodiscard]] Header validate_header_v2(std::span<const std::byte> blob,
                                        bool verify_payload_hash) {
  wire::validate_prefix<PolicyBlobError>(blob, kMagic,
                                         kPolicyBlobFormatVersion,
                                         kHeaderSizeV2, kDomain,
                                         verify_payload_hash);
  Header h;
  h.format_version = kPolicyBlobFormatVersion;
  read_common_fields(blob, h);
  h.sid_slot_count = load_u32(blob.data() + kOffSidSlotCount);
  h.name_arena_len = load_u32(blob.data() + kOffNameArenaLen);
  h.meta_arena_len = load_u32(blob.data() + kOffMetaArenaLen);
  if (load_u32(blob.data() + kOffReservedV2) != 0) {
    reject("reserved header bytes not zero");
  }

  if (h.mode_count > kMaxImageModes) {
    reject("mode table larger than the 64-bit mask allows");
  }
  if (!power_of_two(h.slot_count)) {
    reject("index slot count is not a power of two");
  }
  if (h.flat_count != h.entry_count) {
    reject("index covers " + std::to_string(h.flat_count) +
           " entries, image has " + std::to_string(h.entry_count));
  }
  if (!power_of_two(h.sid_slot_count)) {
    reject("SID probe-slot count is not a power of two");
  }
  // The serialiser's table always satisfies the interner's load factor
  // (< 2/3); enforcing it here guarantees empty probe slots exist, so
  // attached-table lookups terminate like built-table lookups.
  if (std::uint64_t{h.sid_count} * 3 >= std::uint64_t{h.sid_slot_count} * 2) {
    reject("SID probe-slot table over its load factor");
  }
  if (h.wildcard_sid == mac::kNullSid || h.wildcard_sid > h.sid_count) {
    reject("wildcard SID does not name '*'");
  }
  // Every count must be payable in payload bytes BEFORE anything is
  // reserved: a crafted header must earn a rejection, not a
  // multi-gigabyte allocation (memory-exhaustion DoS on the OTA path).
  const std::size_t payload_size = blob.size() - kHeaderSizeV2;
  if (h.name_len > payload_size || h.sid_count > payload_size / 4 ||
      h.entry_count > payload_size / kEntryRecordSizeV2 ||
      h.slot_count > payload_size / 16 || h.flat_count > payload_size / 4 ||
      h.sid_slot_count > payload_size / 4 ||
      h.name_arena_len > payload_size || h.meta_arena_len > payload_size) {
    reject("section counts exceed the blob's own size");
  }
  // The exact-packing gate: the derived section chain must land on the
  // (prefix-validated) total size, so no header count can lie without
  // the sections sliding off the end or leaving slack.
  if (layout_v2(h).total != blob.size()) {
    reject("section layout does not pack to the blob size");
  }
  return h;
}

}  // namespace

std::span<const std::byte, kPolicyBlobMagicSize> policy_blob_magic() noexcept {
  return kMagic;
}

std::vector<PolicyBlobSection> policy_blob_layout(
    std::span<const std::byte> blob) {
  if (peek_version(blob) != kPolicyBlobFormatVersion) {
    reject("layout introspection requires a v2 (zero-copy) blob");
  }
  const Header h = validate_header_v2(blob, true);
  const LayoutV2 layout = layout_v2(h);
  return {
      {"header", 0, kHeaderSizeV2},
      {"image name", layout.name, h.name_len},
      {"sid name offsets", layout.name_offsets,
       4 * (std::size_t{h.sid_count} + 1)},
      {"sid name arena", layout.name_arena, h.name_arena_len},
      {"sid probe slots", layout.sid_slots, 4 * std::size_t{h.sid_slot_count}},
      {"entries", layout.entries,
       kEntryRecordSizeV2 * std::size_t{h.entry_count}},
      {"meta offsets", layout.meta_offsets,
       4 * (2 * std::size_t{h.entry_count} + 1)},
      {"meta arena", layout.meta_arena, h.meta_arena_len},
      {"mode table", layout.modes, 4 * std::size_t{h.mode_count}},
      {"index slot keys", layout.slot_keys, 8 * std::size_t{h.slot_count}},
      {"index slot spans", layout.slot_spans, 8 * std::size_t{h.slot_count}},
      {"flat entry indices", layout.flat, 4 * std::size_t{h.flat_count}},
  };
}

// ------------------------------------------------------------------ writer

std::vector<std::byte> PolicyBlobWriter::write(
    const CompiledPolicyImage& image) {
  const mac::SidTable& sids = image.sids();
  const auto sid_count = static_cast<std::uint32_t>(sids.size());
  const auto entry_count = static_cast<std::uint32_t>(image.entries_.size());
  const std::span<const mac::Sid> probe_slots = sids.probe_slots();

  std::size_t name_arena_len = 0;
  for (mac::Sid sid = 1; sid <= sid_count; ++sid) {
    name_arena_len += sids.name_of(sid).size();
  }
  std::size_t meta_arena_len = 0;
  for (std::uint32_t m = 0; m < entry_count; ++m) {
    meta_arena_len +=
        image.meta_id_view(m).size() + image.meta_reason_view(m).size();
  }
  if (name_arena_len > UINT32_MAX || meta_arena_len > UINT32_MAX) {
    reject("string arenas exceed the format's 32-bit section sizes");
  }

  Header h;
  h.sid_count = sid_count;
  h.entry_count = entry_count;
  h.mode_count = static_cast<std::uint32_t>(image.mode_sids_.size());
  h.slot_count = static_cast<std::uint32_t>(image.slot_keys_.size());
  h.flat_count = static_cast<std::uint32_t>(image.flat_index_.size());
  h.name_len = static_cast<std::uint32_t>(image.name_.size());
  h.sid_slot_count = static_cast<std::uint32_t>(probe_slots.size());
  h.name_arena_len = static_cast<std::uint32_t>(name_arena_len);
  h.meta_arena_len = static_cast<std::uint32_t>(meta_arena_len);
  const LayoutV2 layout = layout_v2(h);

  // One zero-filled allocation: the inter-section padding and every
  // reserved byte are zero by construction.
  std::vector<std::byte> blob(layout.total);
  const auto copy_str = [&blob](std::size_t at, std::string_view s) {
    std::memcpy(blob.data() + at, s.data(), s.size());
    return at + s.size();
  };

  copy_str(layout.name, image.name_);

  // SID names: offsets array (sid_count + 1 cumulative positions), then
  // the concatenated arena — the attachable form of the interner,
  // together with its probe-slot array serialised verbatim.
  std::size_t arena_at = layout.name_arena;
  std::uint32_t cumulative = 0;
  store_u32(blob.data() + layout.name_offsets, 0);
  for (mac::Sid sid = 1; sid <= sid_count; ++sid) {
    const std::string_view name = sids.name_of(sid);
    arena_at = copy_str(arena_at, name);
    cumulative += static_cast<std::uint32_t>(name.size());
    store_u32(blob.data() + layout.name_offsets + 4 * std::size_t{sid},
              cumulative);
  }
  for (std::size_t i = 0; i < probe_slots.size(); ++i) {
    store_u32(blob.data() + layout.sid_slots + 4 * i, probe_slots[i]);
  }

  // Packed entries, field by field (no struct memcpy: the static_asserts
  // pin the in-memory layout for the READER's benefit, but the writer
  // still encodes through the shift stores so a big-endian host emits
  // identical bytes — the interop guarantee).
  for (std::uint32_t i = 0; i < entry_count; ++i) {
    const Entry& entry = image.entries_[i];
    std::byte* at = blob.data() + layout.entries +
                    kEntryRecordSizeV2 * std::size_t{i};
    store_u32(at, entry.subject);
    store_u32(at + 4, entry.object);
    at[8] = std::byte(static_cast<unsigned char>(entry.permission));
    at[9] = std::byte(entry.specificity);
    store_u32(at + 12, static_cast<std::uint32_t>(entry.priority));
    store_u64(at + 16, entry.mode_mask);
    store_u32(at + 24, entry.meta);
  }

  // Audit metas: offsets (2*entry_count + 1 cumulative positions into
  // the arena), then the concatenated id/reason pairs. The two
  // permission-mismatch deny texts are derived — identical bytes, never
  // stored.
  arena_at = layout.meta_arena;
  cumulative = 0;
  store_u32(blob.data() + layout.meta_offsets, 0);
  for (std::uint32_t m = 0; m < entry_count; ++m) {
    const std::string_view id = image.meta_id_view(m);
    const std::string_view reason = image.meta_reason_view(m);
    arena_at = copy_str(arena_at, id);
    cumulative += static_cast<std::uint32_t>(id.size());
    store_u32(blob.data() + layout.meta_offsets + 4 * (2 * std::size_t{m} + 1),
              cumulative);
    arena_at = copy_str(arena_at, reason);
    cumulative += static_cast<std::uint32_t>(reason.size());
    store_u32(blob.data() + layout.meta_offsets + 4 * (2 * std::size_t{m} + 2),
              cumulative);
  }

  for (std::size_t i = 0; i < image.mode_sids_.size(); ++i) {
    store_u32(blob.data() + layout.modes + 4 * i, image.mode_sids_[i]);
  }

  // The sealed open-addressing index, verbatim: the loader validates it
  // (bounds, reachability, exact correspondence to the entries) instead
  // of rebuilding it.
  for (std::size_t i = 0; i < image.slot_keys_.size(); ++i) {
    store_u64(blob.data() + layout.slot_keys + 8 * i, image.slot_keys_[i]);
  }
  for (std::size_t i = 0; i < image.slot_spans_.size(); ++i) {
    store_u32(blob.data() + layout.slot_spans + 8 * i,
              image.slot_spans_[i].offset);
    store_u32(blob.data() + layout.slot_spans + 8 * i + 4,
              image.slot_spans_[i].count);
  }
  for (std::size_t i = 0; i < image.flat_index_.size(); ++i) {
    store_u32(blob.data() + layout.flat + 4 * i, image.flat_index_[i]);
  }

  std::memcpy(blob.data() + wire::kOffMagic, kMagic.data(), kMagic.size());
  store_u32(blob.data() + wire::kOffFormatVersion, kPolicyBlobFormatVersion);
  store_u32(blob.data() + wire::kOffEndianTag, wire::kEndianTag);
  store_u64(blob.data() + wire::kOffTotalSize, layout.total);
  store_u64(blob.data() + wire::kOffPayloadHash,
            wire::hash_payload(
                std::span<const std::byte>(blob).subspan(kHeaderSizeV2)));
  store_u64(blob.data() + kOffFingerprint, image.fingerprint());
  store_u64(blob.data() + kOffImageVersion, image.version_);
  store_u32(blob.data() + kOffSidCount, h.sid_count);
  store_u32(blob.data() + kOffEntryCount, h.entry_count);
  store_u32(blob.data() + kOffModeCount, h.mode_count);
  store_u32(blob.data() + kOffSlotCount, h.slot_count);
  store_u32(blob.data() + kOffFlatCount, h.flat_count);
  store_u32(blob.data() + kOffNameLen, h.name_len);
  store_u32(blob.data() + kOffWildcardSid, image.wildcard_sid_);
  blob[kOffDefaultAllow] = std::byte(image.default_allow_ ? 1 : 0);
  store_u32(blob.data() + kOffSidSlotCount, h.sid_slot_count);
  store_u32(blob.data() + kOffNameArenaLen, h.name_arena_len);
  store_u32(blob.data() + kOffMetaArenaLen, h.meta_arena_len);
  return blob;
}

std::vector<std::byte> PolicyBlobWriter::write_v1(
    const CompiledPolicyImage& image) {
  const mac::SidTable& sids = image.sids();

  std::vector<std::byte> payload;
  // Generous reservation: fixed-size sections plus a guess for strings.
  payload.reserve(128 + sids.size() * 24 + image.entries_.size() * 128 +
                  image.slot_keys_.size() * 16);

  // Image name, then every interned name in SID order (SID i == position
  // i-1): replaying intern() over this list reconstructs the exact table.
  for (const char ch : image.name_) {
    payload.push_back(std::byte(static_cast<unsigned char>(ch)));
  }
  for (mac::Sid sid = 1; sid <= sids.size(); ++sid) {
    put_str(payload, sids.name_of(sid));
  }

  // Packed entries, field by field (no struct memcpy: padding bytes and
  // compiler layout never reach the wire — the interop guarantee).
  for (const Entry& entry : image.entries_) {
    put_u32(payload, entry.subject);
    put_u32(payload, entry.object);
    payload.push_back(std::byte(static_cast<unsigned char>(entry.permission)));
    payload.push_back(std::byte(entry.specificity));
    payload.push_back(std::byte{0});  // reserved
    payload.push_back(std::byte{0});
    put_u32(payload, static_cast<std::uint32_t>(entry.priority));
    put_u64(payload, entry.mode_mask);
    put_u32(payload, entry.meta);
  }

  // Audit metas: rule id + the allow reason. The two permission-mismatch
  // deny texts are derived — identical bytes, never stored.
  for (std::uint32_t m = 0; m < image.entries_.size(); ++m) {
    put_str(payload, image.meta_id_view(m));
    put_str(payload, image.meta_reason_view(m));
  }

  for (const mac::Sid mode : image.mode_sids_) put_u32(payload, mode);

  for (const std::uint64_t key : image.slot_keys_) put_u64(payload, key);
  for (const SlotSpan& span : image.slot_spans_) {
    put_u32(payload, span.offset);
    put_u32(payload, span.count);
  }
  for (const std::uint32_t i : image.flat_index_) put_u32(payload, i);

  std::vector<std::byte> blob(kHeaderSizeV1);
  std::memcpy(blob.data() + wire::kOffMagic, kMagic.data(), kMagic.size());
  store_u32(blob.data() + wire::kOffFormatVersion, kPolicyBlobFormatVersionV1);
  store_u32(blob.data() + wire::kOffEndianTag, wire::kEndianTag);
  store_u64(blob.data() + wire::kOffTotalSize, kHeaderSizeV1 + payload.size());
  store_u64(blob.data() + wire::kOffPayloadHash, wire::hash_payload(payload));
  store_u64(blob.data() + kOffFingerprint, image.fingerprint());
  store_u64(blob.data() + kOffImageVersion, image.version_);
  store_u32(blob.data() + kOffSidCount,
            static_cast<std::uint32_t>(sids.size()));
  store_u32(blob.data() + kOffEntryCount,
            static_cast<std::uint32_t>(image.entries_.size()));
  store_u32(blob.data() + kOffModeCount,
            static_cast<std::uint32_t>(image.mode_sids_.size()));
  store_u32(blob.data() + kOffSlotCount,
            static_cast<std::uint32_t>(image.slot_keys_.size()));
  store_u32(blob.data() + kOffFlatCount,
            static_cast<std::uint32_t>(image.flat_index_.size()));
  store_u32(blob.data() + kOffNameLen,
            static_cast<std::uint32_t>(image.name_.size()));
  store_u32(blob.data() + kOffWildcardSid, image.wildcard_sid_);
  blob[kOffDefaultAllow] = std::byte(image.default_allow_ ? 1 : 0);
  blob[kOffDefaultAllow + 1] = std::byte{0};
  blob[kOffDefaultAllow + 2] = std::byte{0};
  blob[kOffDefaultAllow + 3] = std::byte{0};

  blob.insert(blob.end(), payload.begin(), payload.end());
  return blob;
}

void PolicyBlobWriter::write_file(const CompiledPolicyImage& image,
                                  const std::string& path) {
  wire::write_file<PolicyBlobError>(write(image), path, kDomain);
}

// ------------------------------------------------------------------ reader

PolicyBlobInfo PolicyBlobReader::probe(std::span<const std::byte> blob) {
  const Header h = peek_version(blob) == kPolicyBlobFormatVersionV1
                       ? validate_header_v1(blob)
                       : validate_header_v2(blob, true);
  PolicyBlobInfo info;
  info.format_version = h.format_version;
  info.fingerprint = h.fingerprint;
  info.image_version = h.image_version;
  info.sid_count = h.sid_count;
  info.entry_count = h.entry_count;
  info.total_size = h.total_size;
  return info;
}

void PolicyBlobReader::validate_index(const CompiledPolicyImage& image,
                                      std::uint32_t entry_count) {
  // Semantic index validation: the loaded open-addressing table must be
  // EXACTLY a sealed index over the loaded entries — every slot key
  // reachable by its own probe sequence, every span in bounds and keyed
  // consistently, every entry indexed exactly once in insertion order.
  // (The fingerprint does not cover the index — it is derived data — so
  // this check is what keeps a corrupted index from silently serving
  // wrong decisions or walking out of bounds.)
  const std::size_t mask = image.slot_keys_.size() - 1;
  std::size_t occupied = 0;
  std::vector<bool> indexed(entry_count, false);
  for (std::size_t s = 0; s < image.slot_keys_.size(); ++s) {
    const std::uint64_t key = image.slot_keys_[s];
    if (key == 0) {
      if (image.slot_spans_[s].offset != 0 ||
          image.slot_spans_[s].count != 0) {
        reject("empty index slot carries a non-empty span");
      }
      continue;
    }
    ++occupied;
    // The probe sequence for `key` must land on this slot before any
    // empty slot, or evaluation could never reach it.
    std::size_t probe = mac::mix_av_key(key) & mask;
    std::size_t steps = 0;
    while (probe != s) {
      if (image.slot_keys_[probe] == 0 || image.slot_keys_[probe] == key ||
          ++steps > image.slot_keys_.size()) {
        reject("index slot unreachable by its probe sequence");
      }
      probe = (probe + 1) & mask;
    }
    const SlotSpan span = image.slot_spans_[s];
    if (span.count == 0) reject("occupied index slot with an empty span");
    if (span.offset > entry_count || span.count > entry_count - span.offset) {
      reject("index span overruns the flat entry list");
    }
    std::uint32_t previous = 0;
    for (std::uint32_t c = 0; c < span.count; ++c) {
      const std::uint32_t e = image.flat_index_[span.offset + c];
      if (e >= entry_count) reject("index names a nonexistent entry");
      const Entry& entry = image.entries_[e];
      if (CompiledPolicyImage::pair_key(entry.subject, entry.object) != key) {
        reject("index slot groups an entry under the wrong key");
      }
      if (indexed[e]) reject("entry indexed twice");
      if (c > 0 && e <= previous) {
        reject("index span out of insertion order");
      }
      indexed[e] = true;
      previous = e;
    }
  }
  if (occupied == image.slot_keys_.size()) {
    reject("index has no empty slot (probe termination impossible)");
  }
  for (std::uint32_t e = 0; e < entry_count; ++e) {
    if (!indexed[e]) reject("entry missing from the index");
  }
}

CompiledPolicyImage PolicyBlobReader::load_v1(
    std::span<const std::byte> blob, std::shared_ptr<mac::SidTable> sids) {
  const Header h = validate_header_v1(blob);
  if (h.mode_count > kMaxImageModes) {
    reject("mode table larger than the 64-bit mask allows");
  }
  if (!power_of_two(h.slot_count)) {
    reject("index slot count is not a power of two");
  }
  if (h.flat_count != h.entry_count) {
    reject("index covers " + std::to_string(h.flat_count) +
           " entries, image has " + std::to_string(h.entry_count));
  }
  // Every count must be payable in payload bytes BEFORE anything is
  // reserved: a crafted header must earn a rejection, not a
  // multi-gigabyte allocation (memory-exhaustion DoS on the OTA path).
  const std::size_t payload_size = blob.size() - kHeaderSizeV1;
  if (h.name_len > payload_size || h.sid_count > payload_size / 4 ||
      h.entry_count > payload_size / kEntryRecordSizeV1 ||
      h.slot_count > payload_size / 16 || h.flat_count > payload_size / 4) {
    reject("section counts exceed the blob's own size");
  }

  Cursor cursor(blob.subspan(kHeaderSizeV1), kDomain);

  CompiledPolicyImage image;
  // Image name: length lives in the header, bytes open the payload.
  image.name_ = cursor.raw(h.name_len);
  image.version_ = h.image_version;
  image.default_allow_ = h.default_allow;

  // SID space: replay every carried name through the interner and demand
  // the historical SID back. A fresh table trivially satisfies this; a
  // caller-provided table must be interning-prefix-compatible, anything
  // else means the packed entries would denote different identities.
  image.sids_ = sids != nullptr ? std::move(sids)
                                : std::make_shared<mac::SidTable>();
  image.sids_->reserve(h.sid_count);
  for (std::uint32_t i = 0; i < h.sid_count; ++i) {
    const std::string_view name = cursor.view();
    const mac::Sid sid = image.sids_->intern(name);
    if (sid != i + 1) {
      reject("SID space mismatch: '" + std::string(name) + "' interned to " +
             std::to_string(sid) + ", blob carries " + std::to_string(i + 1));
    }
  }
  if (h.wildcard_sid == mac::kNullSid || h.wildcard_sid > h.sid_count ||
      image.sids_->name_of(h.wildcard_sid) != "*") {
    reject("wildcard SID does not name '*'");
  }
  image.wildcard_sid_ = h.wildcard_sid;

  const auto check_sid = [&](mac::Sid sid, const char* what) {
    if (sid == mac::kNullSid || sid > h.sid_count) {
      reject(std::string(what) + " SID outside the carried table");
    }
  };

  image.entries_store_.reserve(h.entry_count);
  const std::byte* entry_bytes =
      cursor.take(std::size_t{h.entry_count} * kEntryRecordSizeV1);
  for (std::uint32_t i = 0; i < h.entry_count; ++i) {
    const std::byte* at = entry_bytes + std::size_t{i} * kEntryRecordSizeV1;
    Entry entry;
    entry.subject = load_u32(at);
    entry.object = load_u32(at + 4);
    const auto permission = std::to_integer<std::uint8_t>(at[8]);
    entry.specificity = std::to_integer<std::uint8_t>(at[9]);
    entry.priority = static_cast<std::int32_t>(load_u32(at + 12));
    entry.mode_mask = load_u64(at + 16);
    entry.meta = load_u32(at + 24);
    entry.permission = static_cast<threat::Permission>(permission);

    // Per-entry validation, folded into one predicate so the accept path
    // is a single branch ((sid - 1) < count is the unsigned both-ends
    // check: kNullSid wraps). Rejection re-runs the parts for a precise
    // message — the cold path can afford it.
    const std::uint8_t specificity = static_cast<std::uint8_t>(
        (entry.subject != image.wildcard_sid_ ? 1 : 0) +
        (entry.object != image.wildcard_sid_ ? 1 : 0));
    const bool mode_bits_ok =
        h.mode_count >= 64 || (entry.mode_mask >> h.mode_count) == 0;
    if ((entry.subject - 1) >= h.sid_count || (entry.object - 1) >= h.sid_count ||
        permission > static_cast<std::uint8_t>(threat::Permission::kReadWrite) ||
        entry.specificity != specificity || !mode_bits_ok || entry.meta != i) {
      check_sid(entry.subject, "entry subject");
      check_sid(entry.object, "entry object");
      if (permission >
          static_cast<std::uint8_t>(threat::Permission::kReadWrite)) {
        reject("entry permission byte out of range");
      }
      if (entry.specificity != specificity) {
        reject("entry specificity inconsistent with its SIDs");
      }
      if (!mode_bits_ok) {
        reject("entry mode mask names bits beyond the mode table");
      }
      reject("entry/meta correspondence broken");
    }
    image.entries_store_.push_back(entry);
  }

  image.metas_.reserve(h.entry_count);
  for (std::uint32_t i = 0; i < h.entry_count; ++i) {
    std::string id = cursor.str();
    std::string reason = cursor.str();
    CompiledPolicyImage::emplace_meta(image.metas_, std::move(id),
                                      image.entries_store_[i].permission,
                                      std::move(reason));
  }

  image.mode_store_.reserve(h.mode_count);
  for (std::uint32_t i = 0; i < h.mode_count; ++i) {
    const mac::Sid mode = cursor.u32();
    check_sid(mode, "mode");
    for (const mac::Sid seen : image.mode_store_) {
      if (seen == mode) reject("duplicate mode SID in the mode table");
    }
    image.mode_store_.push_back(mode);
  }

  image.slot_key_store_.reserve(h.slot_count);
  const std::byte* key_bytes = cursor.take(std::size_t{h.slot_count} * 8);
  for (std::uint32_t i = 0; i < h.slot_count; ++i) {
    image.slot_key_store_.push_back(load_u64(key_bytes + std::size_t{i} * 8));
  }
  image.slot_span_store_.reserve(h.slot_count);
  const std::byte* span_bytes = cursor.take(std::size_t{h.slot_count} * 8);
  for (std::uint32_t i = 0; i < h.slot_count; ++i) {
    image.slot_span_store_.push_back(
        {load_u32(span_bytes + std::size_t{i} * 8),
         load_u32(span_bytes + std::size_t{i} * 8 + 4)});
  }
  image.flat_store_.reserve(h.flat_count);
  const std::byte* flat_bytes = cursor.take(std::size_t{h.flat_count} * 4);
  for (std::uint32_t i = 0; i < h.flat_count; ++i) {
    image.flat_store_.push_back(load_u32(flat_bytes + std::size_t{i} * 4));
  }
  if (!cursor.exhausted()) {
    reject("trailing bytes after the last section");
  }

  image.adopt_owned_storage();
  validate_index(image, h.entry_count);

  image.default_allow_decision_ =
      Decision::allow("", "no matching rule; default allow");
  image.default_deny_decision_ =
      Decision::deny("", "no matching rule; default deny");

  // The final gate: the reconstructed image must fingerprint to exactly
  // what the writer recorded — the same integrity anchor the compiled
  // pipeline uses, now guarding the OTA trust boundary.
  if (image.fingerprint() != h.fingerprint) {
    reject("fingerprint mismatch (content does not match manifest)",
           WireFault::kFingerprintMismatch);
  }
  return image;
}

CompiledPolicyImage PolicyBlobReader::load_v2(
    std::shared_ptr<const PolicyBuffer> buffer,
    std::shared_ptr<mac::SidTable> sids, BlobTrust trust) {
  const std::span<const std::byte> blob = buffer->bytes();
  const bool untrusted = trust == BlobTrust::kUntrusted;
  const Header h = validate_header_v2(blob, untrusted);
  const LayoutV2 layout = layout_v2(h);
  const std::byte* base = blob.data();
  if (reinterpret_cast<std::uintptr_t>(base) % 8 != 0) {
    // operator new and mmap both hand out 8-aligned memory; an unaligned
    // buffer means the caller sliced one — not a blob the in-place views
    // can run on.
    reject("buffer is not 8-byte aligned (zero-copy views need alignment)");
  }

  CompiledPolicyImage image;
  image.name_.assign(reinterpret_cast<const char*>(base + layout.name),
                     h.name_len);
  image.version_ = h.image_version;
  image.default_allow_ = h.default_allow;
  image.wildcard_sid_ = h.wildcard_sid;

  const std::string_view name_arena(
      reinterpret_cast<const char*>(base + layout.name_arena),
      h.name_arena_len);

  if (kLittleEndianHost) {
    // ---- the zero-copy path: every section is viewed in place --------
    const std::span<const std::uint32_t> name_offsets(
        reinterpret_cast<const std::uint32_t*>(base + layout.name_offsets),
        std::size_t{h.sid_count} + 1);
    const std::span<const mac::Sid> sid_slots(
        reinterpret_cast<const mac::Sid*>(base + layout.sid_slots),
        h.sid_slot_count);

    // Name offsets must be monotone and cover the arena exactly before
    // anything dereferences through them. O(sid_count) — still needed at
    // the sealed level? No: name_at bounds-guards each access, so sealed
    // attach skips this (and a mangled offset degrades to a lookup miss,
    // never UB). The untrusted level proves it outright.
    if (untrusted) {
      if (name_offsets[0] != 0 || name_offsets[h.sid_count] != h.name_arena_len) {
        reject("SID name offsets do not cover the name arena");
      }
      for (std::uint32_t i = 0; i < h.sid_count; ++i) {
        if (name_offsets[i] > name_offsets[i + 1]) {
          reject("SID name offsets are not monotone");
        }
      }
    }

    if (sids != nullptr) {
      // A caller-provided table: replay every carried name and demand
      // the historical SID back (prefix-compatibility — identical to the
      // v1 semantics; inherently O(n), so the zero-copy attach does not
      // apply to this path). Offsets were validated above for untrusted;
      // replaying a sealed blob into a foreign table still needs them
      // sane, so walk defensively via name_at-equivalent bounds.
      image.sids_ = std::move(sids);
      image.sids_->reserve(h.sid_count);
      for (std::uint32_t i = 0; i < h.sid_count; ++i) {
        const std::uint32_t begin = name_offsets[i];
        const std::uint32_t end = name_offsets[i + 1];
        if (begin > end || end > h.name_arena_len) {
          reject("SID name offsets are not monotone");
        }
        const std::string_view name = name_arena.substr(begin, end - begin);
        const mac::Sid sid = image.sids_->intern(name);
        if (sid != i + 1) {
          reject("SID space mismatch: '" + std::string(name) +
                 "' interned to " + std::to_string(sid) + ", blob carries " +
                 std::to_string(i + 1));
        }
      }
    } else {
      // The boot path: attach the interner over the blob's own arena and
      // probe slots — O(1), nothing copied.
      image.sids_ = std::make_shared<mac::SidTable>(mac::SidTable::attach(
          name_arena, name_offsets, sid_slots, buffer));
      if (untrusted) {
        // The attached probe slots must be exactly a lookup structure
        // over the carried names: every SID placed once, and every name
        // findable back to its own SID (which proves reachability and
        // rules out shadowing duplicates — the replay-intern equivalence
        // the v1 path gets for free).
        std::vector<bool> placed(h.sid_count, false);
        std::size_t occupied = 0;
        for (const mac::Sid sid : sid_slots) {
          if (sid == mac::kNullSid) continue;
          if (sid > h.sid_count) {
            reject("SID probe slot names a SID outside the carried table");
          }
          if (placed[sid - 1]) reject("SID placed in two probe slots");
          placed[sid - 1] = true;
          ++occupied;
        }
        if (occupied != h.sid_count) {
          reject("SID probe slots do not place every carried SID");
        }
        for (mac::Sid sid = 1; sid <= h.sid_count; ++sid) {
          if (image.sids_->find(image.sids_->name_of(sid)) != sid) {
            reject("SID probe slots disagree with interning order");
          }
        }
      }
    }
    if (untrusted && image.sids_->name_of(h.wildcard_sid) != "*") {
      reject("wildcard SID does not name '*'");
    }

    image.buffer_ = buffer;
    image.entries_ = {reinterpret_cast<const Entry*>(base + layout.entries),
                      h.entry_count};
    image.mode_sids_ = {reinterpret_cast<const mac::Sid*>(base + layout.modes),
                        h.mode_count};
    image.slot_keys_ = {
        reinterpret_cast<const std::uint64_t*>(base + layout.slot_keys),
        h.slot_count};
    image.slot_spans_ = {
        reinterpret_cast<const SlotSpan*>(base + layout.slot_spans),
        h.slot_count};
    image.flat_index_ = {
        reinterpret_cast<const std::uint32_t*>(base + layout.flat),
        h.flat_count};
    image.meta_offsets_ =
        reinterpret_cast<const std::uint32_t*>(base + layout.meta_offsets);
    image.meta_arena_ =
        reinterpret_cast<const char*>(base + layout.meta_arena);
    image.meta_arena_len_ = h.meta_arena_len;
    image.meta_count_ = h.entry_count;
    image.lazy_metas_.init(h.entry_count);
  } else {
    // ---- big-endian fallback: decode into owned storage --------------
    // The wire is little-endian; a BE host cannot alias it, so it pays
    // the v1-style reconstruction (correctness over flatness — no
    // supported target is BE, but the format promise holds everywhere).
    const std::byte* off_bytes = base + layout.name_offsets;
    std::vector<std::uint32_t> name_offsets(std::size_t{h.sid_count} + 1);
    for (std::size_t i = 0; i < name_offsets.size(); ++i) {
      name_offsets[i] = load_u32(off_bytes + 4 * i);
    }
    if (name_offsets[0] != 0 || name_offsets[h.sid_count] != h.name_arena_len) {
      reject("SID name offsets do not cover the name arena");
    }
    image.sids_ = sids != nullptr ? std::move(sids)
                                  : std::make_shared<mac::SidTable>();
    image.sids_->reserve(h.sid_count);
    for (std::uint32_t i = 0; i < h.sid_count; ++i) {
      if (name_offsets[i] > name_offsets[i + 1]) {
        reject("SID name offsets are not monotone");
      }
      const std::string_view name =
          name_arena.substr(name_offsets[i], name_offsets[i + 1] -
                                                 name_offsets[i]);
      const mac::Sid sid = image.sids_->intern(name);
      if (sid != i + 1) {
        reject("SID space mismatch: '" + std::string(name) +
               "' interned to " + std::to_string(sid) + ", blob carries " +
               std::to_string(i + 1));
      }
    }
    if (image.sids_->name_of(h.wildcard_sid) != "*") {
      reject("wildcard SID does not name '*'");
    }

    image.entries_store_.resize(h.entry_count);
    for (std::uint32_t i = 0; i < h.entry_count; ++i) {
      const std::byte* at =
          base + layout.entries + kEntryRecordSizeV2 * std::size_t{i};
      Entry& entry = image.entries_store_[i];
      entry.subject = load_u32(at);
      entry.object = load_u32(at + 4);
      entry.permission =
          static_cast<threat::Permission>(std::to_integer<std::uint8_t>(at[8]));
      entry.specificity = std::to_integer<std::uint8_t>(at[9]);
      entry.priority = static_cast<std::int32_t>(load_u32(at + 12));
      entry.mode_mask = load_u64(at + 16);
      entry.meta = load_u32(at + 24);
    }
    const std::byte* moff = base + layout.meta_offsets;
    const std::string_view meta_arena(
        reinterpret_cast<const char*>(base + layout.meta_arena),
        h.meta_arena_len);
    image.metas_.reserve(h.entry_count);
    for (std::uint32_t m = 0; m < h.entry_count; ++m) {
      const std::uint32_t id_begin = load_u32(moff + 4 * (2 * std::size_t{m}));
      const std::uint32_t id_end = load_u32(moff + 4 * (2 * std::size_t{m} + 1));
      const std::uint32_t reason_end =
          load_u32(moff + 4 * (2 * std::size_t{m} + 2));
      if (id_begin > id_end || id_end > reason_end ||
          reason_end > h.meta_arena_len) {
        reject("meta offsets are not monotone");
      }
      CompiledPolicyImage::emplace_meta(
          image.metas_,
          std::string(meta_arena.substr(id_begin, id_end - id_begin)),
          image.entries_store_[m].permission,
          std::string(meta_arena.substr(id_end, reason_end - id_end)));
    }
    image.mode_store_.resize(h.mode_count);
    for (std::uint32_t i = 0; i < h.mode_count; ++i) {
      image.mode_store_[i] = load_u32(base + layout.modes + 4 * i);
    }
    image.slot_key_store_.resize(h.slot_count);
    image.slot_span_store_.resize(h.slot_count);
    for (std::uint32_t i = 0; i < h.slot_count; ++i) {
      image.slot_key_store_[i] = load_u64(base + layout.slot_keys + 8 * i);
      image.slot_span_store_[i] = {
          load_u32(base + layout.slot_spans + 8 * std::size_t{i}),
          load_u32(base + layout.slot_spans + 8 * std::size_t{i} + 4)};
    }
    image.flat_store_.resize(h.flat_count);
    for (std::uint32_t i = 0; i < h.flat_count; ++i) {
      image.flat_store_[i] = load_u32(base + layout.flat + 4 * i);
    }
    image.adopt_owned_storage();
  }

  if (untrusted) {
    // Per-entry validation over the bound views — identical checks to
    // the v1 decode loop, plus the v2 reserved bytes.
    const auto check_sid = [&](mac::Sid sid, const char* what) {
      if (sid == mac::kNullSid || sid > h.sid_count) {
        reject(std::string(what) + " SID outside the carried table");
      }
    };
    for (std::uint32_t i = 0; i < h.entry_count; ++i) {
      const Entry& entry = image.entries_[i];
      const std::uint8_t specificity = static_cast<std::uint8_t>(
          (entry.subject != image.wildcard_sid_ ? 1 : 0) +
          (entry.object != image.wildcard_sid_ ? 1 : 0));
      const bool mode_bits_ok =
          h.mode_count >= 64 || (entry.mode_mask >> h.mode_count) == 0;
      const auto permission = static_cast<std::uint8_t>(entry.permission);
      if ((entry.subject - 1) >= h.sid_count ||
          (entry.object - 1) >= h.sid_count ||
          permission >
              static_cast<std::uint8_t>(threat::Permission::kReadWrite) ||
          entry.specificity != specificity || !mode_bits_ok ||
          entry.meta != i || entry.reserved0 != 0 || entry.reserved1 != 0 ||
          entry.reserved2 != 0) {
        check_sid(entry.subject, "entry subject");
        check_sid(entry.object, "entry object");
        if (permission >
            static_cast<std::uint8_t>(threat::Permission::kReadWrite)) {
          reject("entry permission byte out of range");
        }
        if (entry.specificity != specificity) {
          reject("entry specificity inconsistent with its SIDs");
        }
        if (!mode_bits_ok) {
          reject("entry mode mask names bits beyond the mode table");
        }
        if (entry.reserved0 != 0 || entry.reserved1 != 0 ||
            entry.reserved2 != 0) {
          reject("entry reserved bytes not zero");
        }
        reject("entry/meta correspondence broken");
      }
    }
    // Meta offsets must be monotone and cover the arena exactly (the
    // borrowed meta views and the fingerprint read through them).
    if (image.meta_arena_ != nullptr) {
      const std::uint32_t* moff = image.meta_offsets_;
      if (moff[0] != 0 ||
          moff[2 * std::size_t{h.entry_count}] != h.meta_arena_len) {
        reject("meta offsets do not cover the meta arena");
      }
      for (std::size_t i = 0; i < 2 * std::size_t{h.entry_count}; ++i) {
        if (moff[i] > moff[i + 1]) reject("meta offsets are not monotone");
      }
    }
    for (std::size_t i = 0; i < image.mode_sids_.size(); ++i) {
      const mac::Sid mode = image.mode_sids_[i];
      if (mode == mac::kNullSid || mode > h.sid_count) {
        reject("mode SID outside the carried table");
      }
      for (std::size_t j = 0; j < i; ++j) {
        if (image.mode_sids_[j] == mode) {
          reject("duplicate mode SID in the mode table");
        }
      }
    }
    validate_index(image, h.entry_count);
  }

  image.default_allow_decision_ =
      Decision::allow("", "no matching rule; default allow");
  image.default_deny_decision_ =
      Decision::deny("", "no matching rule; default deny");

  // The final gate: the viewed image must fingerprint to exactly what
  // the writer recorded — computed straight off the arenas, no Meta
  // materialised. Skipped at the sealed level (it is O(n); the staging
  // pass already proved it for these bytes).
  if (untrusted && image.fingerprint() != h.fingerprint) {
    reject("fingerprint mismatch (content does not match manifest)",
           WireFault::kFingerprintMismatch);
  }
  return image;
}

CompiledPolicyImage PolicyBlobReader::load(
    std::span<const std::byte> blob, std::shared_ptr<mac::SidTable> sids) {
  if (peek_version(blob) == kPolicyBlobFormatVersionV1) {
    return load_v1(blob, std::move(sids));
  }
  // A span caller owns nothing the image could borrow: copy the blob
  // once into a refcounted, aligned buffer, then run the zero-copy load
  // over it (still no per-element copying).
  return load_v2(PolicyBuffer::copy_of(blob), std::move(sids),
                 BlobTrust::kUntrusted);
}

CompiledPolicyImage PolicyBlobReader::load(
    std::shared_ptr<const PolicyBuffer> buffer,
    std::shared_ptr<mac::SidTable> sids, BlobTrust trust) {
  if (buffer == nullptr) reject("null buffer");
  if (peek_version(buffer->bytes()) == kPolicyBlobFormatVersionV1) {
    return load_v1(buffer->bytes(), std::move(sids));
  }
  return load_v2(std::move(buffer), std::move(sids), trust);
}

CompiledPolicyImage PolicyBlobReader::load_file(
    const std::string& path, std::shared_ptr<mac::SidTable> sids,
    BlobTrust trust) {
  std::string error;
  std::shared_ptr<const PolicyBuffer> buffer =
      PolicyBuffer::map_file(path, &error);
  if (buffer == nullptr) reject(error);
  return load(std::move(buffer), std::move(sids), trust);
}

}  // namespace psme::core
