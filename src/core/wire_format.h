// psme::core — shared wire-format primitives for the persistent policy
// channel.
//
// Two binary formats cross the OTA trust boundary: the full policy image
// blob (core/policy_blob.h) and the fingerprint-anchored policy delta
// (core/policy_delta.h). Both begin with the same 32-byte validated
// prefix — magic, format version, endianness tag, total size, payload
// checksum — and both parse their payload through the same bounds-checked
// cursor discipline: every length and count coming off the wire is
// validated against the remaining bytes BEFORE any access or allocation.
// This header is the ONE definition of that machinery, so the two
// formats' encodings and error taxonomies can never drift apart: a
// truncated blob and a truncated delta fail the same check with the same
// message shape, differing only in their domain prefix and error class.
//
// Error taxonomy: every wire rejection derives from PolicyWireError.
// PolicyBlobError and PolicyDeltaError specialise it so OTA tooling can
// tell WHICH artefact failed while a single catch handles the boundary.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "mac/sid_table.h"

namespace psme::core {

/// Coarse classification of a wire rejection, carried alongside the
/// message so the OTA campaign layer can tell recovery paths apart
/// WITHOUT parsing error text: a kAnchorMismatch delta wants a re-plan
/// (the vehicle is not on the base the server assumed), a
/// kFingerprintMismatch wants a re-download or a full-blob fallback,
/// and kMalformed covers every structural defect (truncation, bad
/// counts, checksum, foreign byte order) — retry the transfer.
enum class WireFault : std::uint8_t {
  kMalformed,            // structural: truncated, corrupted, bad counts
  kAnchorMismatch,       // artefact is anchored to a different base image
  kFingerprintMismatch,  // content does not match the recorded manifest
};

/// Base class of every persistent-format rejection (malformed, truncated,
/// tampered or incompatible byte streams). The message names the failed
/// check — OTA tooling logs it; nothing malformed ever reaches UB.
class PolicyWireError : public std::runtime_error {
 public:
  explicit PolicyWireError(const std::string& what,
                           WireFault fault = WireFault::kMalformed)
      : std::runtime_error(what), fault_(fault) {}

  /// Which recovery class this rejection belongs to (see WireFault).
  [[nodiscard]] WireFault fault() const noexcept { return fault_; }

 private:
  WireFault fault_ = WireFault::kMalformed;
};

namespace wire {

/// The endianness canary both formats embed: serialised little-endian, so
/// a reader on any host sees exactly this value or the stream is foreign.
inline constexpr std::uint32_t kEndianTag = 0x01020304u;

/// Shared 32-byte header prefix layout (byte offsets from stream start).
inline constexpr std::size_t kOffMagic = 0;
inline constexpr std::size_t kMagicSize = 8;
inline constexpr std::size_t kOffFormatVersion = 8;
inline constexpr std::size_t kOffEndianTag = 12;
inline constexpr std::size_t kOffTotalSize = 16;
inline constexpr std::size_t kOffPayloadHash = 24;
inline constexpr std::size_t kPrefixSize = 32;

/// Rounds up to the next 8-byte boundary. The v2 blob lays every payload
/// section on an 8-byte boundary (zero-padded) so the zero-copy loader
/// can view u64-bearing sections in place — see DESIGN.md "Zero-copy
/// image views".
[[nodiscard]] constexpr std::size_t align8(std::size_t n) noexcept {
  return (n + 7) & ~std::size_t{7};
}

// ---------------------------------------------------------------- encode

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(std::byte(static_cast<unsigned char>(v >> (i * 8))));
  }
}

inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(std::byte(static_cast<unsigned char>(v >> (i * 8))));
  }
}

inline void put_str(std::vector<std::byte>& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  for (const char ch : s) {
    out.push_back(std::byte(static_cast<unsigned char>(ch)));
  }
}

inline void store_u32(std::byte* at, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    at[i] = std::byte(static_cast<unsigned char>(v >> (i * 8)));
  }
}

inline void store_u64(std::byte* at, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    at[i] = std::byte(static_cast<unsigned char>(v >> (i * 8)));
  }
}

// ---------------------------------------------------------------- decode

[[nodiscard]] inline std::uint32_t load_u32(const std::byte* at) noexcept {
  return mac::load_le_u32(at);
}

[[nodiscard]] inline std::uint64_t load_u64(const std::byte* at) noexcept {
  return mac::load_le_u64(at);
}

/// Payload checksum: the repo's bulk hash (mac::hash_chain_bytes) over
/// the raw payload. Word-at-a-time instead of the byte-wise FNV because
/// this runs on the boot/OTA hot path over the whole payload, and
/// corruption detection (not collision resistance) is all the field
/// promises. The keyed PolicySigner remains the integrity tag; this is
/// the transport canary.
[[nodiscard]] inline std::uint64_t hash_payload(
    std::span<const std::byte> bytes) noexcept {
  if (bytes.empty()) return mac::hash_chain_u64(0, mac::kFnv1aOffset);
  return mac::hash_chain_bytes(
      std::string_view(reinterpret_cast<const char*>(bytes.data()),
                       bytes.size()),
      mac::kFnv1aOffset);
}

/// Throws the format's error class with its domain prefix ("policy
/// blob: ..." / "policy delta: ..."). `fault` classifies the rejection
/// for the campaign layer; almost every site is structural (the
/// default) — only the anchor and fingerprint gates say otherwise.
template <class Error>
[[noreturn]] inline void reject(std::string_view domain,
                                const std::string& what,
                                WireFault fault = WireFault::kMalformed) {
  throw Error(std::string(domain) + ": " + what, fault);
}

/// Validates everything the shared 32-byte prefix can prove on its own:
/// minimum length, magic, format version, endianness tag, exact total
/// size, payload checksum (payload = everything past `header_size`).
/// Each format reads its remaining header fields itself afterwards.
/// `verify_payload_hash = false` skips the O(payload) checksum — ONLY
/// for the sealed-store trust level of the zero-copy blob loader, where
/// the bytes were validated when staged and the whole point is an O(1)
/// attach (core/policy_blob.h BlobTrust).
template <class Error>
inline void validate_prefix(std::span<const std::byte> stream,
                            std::span<const std::byte, kMagicSize> magic,
                            std::uint32_t format_version,
                            std::size_t header_size, std::string_view domain,
                            bool verify_payload_hash = true) {
  if (stream.size() < header_size) {
    reject<Error>(domain, "truncated (smaller than the fixed header)");
  }
  if (std::memcmp(stream.data() + kOffMagic, magic.data(), magic.size()) !=
      0) {
    reject<Error>(domain, "bad magic (not a " + std::string(domain) + ")");
  }
  const std::uint32_t version = load_u32(stream.data() + kOffFormatVersion);
  if (version != format_version) {
    reject<Error>(domain, "unsupported format version " +
                              std::to_string(version) +
                              " (reader speaks version " +
                              std::to_string(format_version) + ")");
  }
  if (load_u32(stream.data() + kOffEndianTag) != kEndianTag) {
    reject<Error>(domain,
                  "endianness tag mismatch (corrupt or foreign byte order)");
  }
  const std::uint64_t total_size = load_u64(stream.data() + kOffTotalSize);
  if (total_size != stream.size()) {
    reject<Error>(domain, "size mismatch (header claims " +
                              std::to_string(total_size) + " bytes, got " +
                              std::to_string(stream.size()) +
                              " — truncated?)");
  }
  if (verify_payload_hash) {
    const std::uint64_t payload_hash =
        load_u64(stream.data() + kOffPayloadHash);
    if (hash_payload(stream.subspan(header_size)) != payload_hash) {
      reject<Error>(domain,
                    "payload checksum mismatch (corrupted in transit)");
    }
  }
}

/// Whole-file read into a byte buffer, failures reported in the
/// format's error class. Shared by both formats' *_file entry points
/// and the provisioning CLI — one place to fix I/O handling.
template <class Error>
[[nodiscard]] inline std::vector<std::byte> read_file(
    const std::string& path, std::string_view domain) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) reject<Error>(domain, "cannot open '" + path + "' for reading");
  const std::streamsize size = in.tellg();
  if (size < 0) reject<Error>(domain, "cannot size '" + path + "'");
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  if (!bytes.empty()) {
    in.read(reinterpret_cast<char*>(bytes.data()), size);
    if (!in) reject<Error>(domain, "short read from '" + path + "'");
  }
  return bytes;
}

/// Whole-buffer write to a file (truncating), failures reported in the
/// format's error class.
template <class Error>
inline void write_file(std::span<const std::byte> bytes,
                       const std::string& path, std::string_view domain) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) reject<Error>(domain, "cannot open '" + path + "' for writing");
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) reject<Error>(domain, "short write to '" + path + "'");
}

/// Bounds-checked reader over a payload: every length and count coming
/// off the wire is validated against the remaining bytes BEFORE any
/// access, so a hostile stream can at worst earn a rejection in the
/// format's error class.
template <class Error>
class Cursor {
 public:
  Cursor(std::span<const std::byte> bytes, std::string_view domain)
      : bytes_(bytes), domain_(domain) {}

  [[nodiscard]] std::uint32_t u32() {
    need(4, "u32 field");
    const std::uint32_t v = load_u32(bytes_.data() + pos_);
    pos_ += 4;
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    need(8, "u64 field");
    const std::uint64_t v = load_u64(bytes_.data() + pos_);
    pos_ += 8;
    return v;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1, "u8 field");
    return std::to_integer<std::uint8_t>(bytes_[pos_++]);
  }

  [[nodiscard]] std::string str() { return raw(u32()); }

  /// `len` bytes as a string — bounds-checked BEFORE any allocation, so
  /// a hostile length cannot trigger a multi-gigabyte zeroed buffer.
  [[nodiscard]] std::string raw(std::size_t len) {
    need(len, "string bytes");
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  /// Bounds-checks and consumes `n` bytes, returning their start: the
  /// fixed-size record sections pay ONE check per block and decode with
  /// direct loads.
  [[nodiscard]] const std::byte* take(std::size_t n) {
    need(n, "fixed-size section");
    const std::byte* at = bytes_.data() + pos_;
    pos_ += n;
    return at;
  }

  /// A length-prefixed string as a VIEW into the stream (no copy; valid
  /// while the buffer lives). SID-replay loops hand these to intern(),
  /// which copies into its own arena — no temporary string.
  [[nodiscard]] std::string_view view() {
    const std::uint32_t len = u32();
    need(len, "string bytes");
    const std::string_view s(
        reinterpret_cast<const char*>(bytes_.data() + pos_), len);
    pos_ += len;
    return s;
  }

  [[nodiscard]] bool exhausted() const noexcept {
    return pos_ == bytes_.size();
  }

 private:
  void need(std::size_t n, const char* what) const {
    if (bytes_.size() - pos_ < n) {
      reject<Error>(domain_, std::string("truncated payload (") + what +
                                 " overruns the stream)");
    }
  }

  std::span<const std::byte> bytes_;
  std::string_view domain_;
  std::size_t pos_ = 0;
};

}  // namespace wire
}  // namespace psme::core
