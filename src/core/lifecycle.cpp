#include "core/lifecycle.h"

#include <stdexcept>

namespace psme::core {

std::string_view to_string(LifecycleStage stage) noexcept {
  switch (stage) {
    case LifecycleStage::kRiskAssessment: return "risk-assessment";
    case LifecycleStage::kAssetIdentification: return "asset-identification";
    case LifecycleStage::kEntryPointAnalysis: return "entry-point-analysis";
    case LifecycleStage::kThreatIdentification: return "threat-identification";
    case LifecycleStage::kThreatRating: return "threat-rating";
    case LifecycleStage::kCountermeasureDefinition:
      return "countermeasure-definition";
    case LifecycleStage::kSecurityModelDefinition:
      return "security-model-definition";
    case LifecycleStage::kImplementation: return "implementation";
    case LifecycleStage::kSecurityTesting: return "security-testing";
  }
  return "?";
}

Lifecycle::Lifecycle(std::function<threat::ThreatModel()> build_model)
    : build_model_(std::move(build_model)) {
  if (!build_model_) {
    throw std::invalid_argument("Lifecycle: model source required");
  }
}

const SecurityModel& Lifecycle::run(const CompilerOptions& options) {
  records_.clear();
  threat::ThreatModel model = build_model_();

  records_.push_back({LifecycleStage::kRiskAssessment,
                      "use case decomposed: " + model.use_case(), 1});
  records_.push_back({LifecycleStage::kAssetIdentification,
                      "critical assets identified", model.assets().size()});
  records_.push_back({LifecycleStage::kEntryPointAnalysis,
                      "attacker-reachable interfaces enumerated",
                      model.entry_points().size()});
  records_.push_back({LifecycleStage::kThreatIdentification,
                      "threats identified and STRIDE-categorised",
                      model.threats().size()});

  std::size_t high_or_critical = 0;
  for (const auto& t : model.threats()) {
    const auto band = t.dread.band();
    if (band == threat::RiskBand::kHigh || band == threat::RiskBand::kCritical) {
      ++high_or_critical;
    }
  }
  records_.push_back({LifecycleStage::kThreatRating,
                      "DREAD-rated; high/critical threats prioritised",
                      high_or_critical});

  PolicyCompiler compiler(options);
  PolicySet policies = compiler.compile(model);
  records_.push_back({LifecycleStage::kCountermeasureDefinition,
                      "enforceable policy rules derived from threats",
                      policies.size()});

  model_.emplace(std::move(model), std::move(policies));
  records_.push_back({LifecycleStage::kSecurityModelDefinition,
                      "security model (threats + policies) assembled", 1});

  const auto uncovered = model_->uncovered_threats();
  records_.push_back({LifecycleStage::kImplementation,
                      "policies deployable to software/hardware engines",
                      model_->policies().size()});
  records_.push_back({LifecycleStage::kSecurityTesting,
                      uncovered.empty()
                          ? std::string("coverage check passed: all rated threats countered")
                          : "coverage gaps found: " + std::to_string(uncovered.size()),
                      uncovered.size()});
  return *model_;
}

const SecurityModel& Lifecycle::security_model() const {
  if (!model_.has_value()) {
    throw std::logic_error("Lifecycle::security_model: run() not called");
  }
  return *model_;
}

}  // namespace psme::core
