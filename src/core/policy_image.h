// psme::core — the SID-native compiled form of a policy set.
//
// A CompiledPolicyImage is what a fleet actually evaluates against: every
// subject, object and mode name has been interned through a shared
// mac::SidTable exactly once, rules are packed fixed-size entries indexed
// by the (subject SID, object SID) pair, and the audit strings a Decision
// carries (rule id, allow reason) are materialised at compile time as
// prototype Decisions. Evaluation therefore never hashes, compares or
// constructs a string — a batched evaluation is index probes plus
// copy-assignments into caller-owned Decision storage (which reuses its
// heap capacity across ticks).
//
// Images are immutable once built; millions of simulated vehicles share
// one image and one interner (the paper's fleet-scale affordability
// argument). PolicySet keeps its string-rule form as the editable source
// of truth and lazily compiles itself to an image; PolicyCompiler can
// skip the string stage entirely and emit an image straight from a
// threat model (compile_to_image).
//
// Concurrency (DESIGN.md "Concurrency model"): a sealed image is an
// immutable value — Builder::build() is the only producer, there are no
// mutators, and every observer is const. Share it BY REFERENCE across
// any number of threads and call evaluate / evaluate_batch / resolve
// concurrently without synchronisation, provided build() happened-before
// the readers started (thread creation, or a published snapshot, gives
// that for free). Debug builds assert sealed-ness on the evaluate paths.
// car::FleetEvaluator::tick_parallel leans on exactly this guarantee.
// The one shared MUTABLE neighbour is the SidTable behind sid_table():
// interning a NEW name grows it, so the single-writer rule applies there.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "mac/sid_table.h"

namespace psme::core {

/// Widest mode condition an image entry can carry: one bit per distinct
/// operational mode named by any rule. Sixty-four is far beyond any real
/// vehicle (the case study has three); the builder throws beyond it.
inline constexpr std::size_t kMaxImageModes = 64;

class CompiledPolicyImage {
 public:
  /// One packed rule. `subject`/`object` equal to wildcard_sid() encode
  /// the "*" wildcard; `mode_mask` is a bitmask over the image's mode
  /// table (0 = applies in every mode); `meta` indexes the audit-string
  /// table. The matching, priority, specificity and first-wins tie-break
  /// semantics are exactly PolicySet::evaluate's.
  struct Entry {
    mac::Sid subject = mac::kNullSid;
    mac::Sid object = mac::kNullSid;
    threat::Permission permission = threat::Permission::kNone;
    std::uint8_t specificity = 0;  // 0 = both wildcards .. 2 = both exact
    std::int32_t priority = 0;
    std::uint64_t mode_mask = 0;
    std::uint32_t meta = 0;
  };

  /// Accumulates entries, interning every name exactly once. Used by
  /// PolicyCompiler::compile_to_image and by from_policy_set; not a
  /// public extension point for ad-hoc rule soups — go through PolicySet
  /// for that. (Defined after the class: it holds the image it grows.)
  class Builder;

  /// Compiles an existing string-rule set against `sids` (fresh table
  /// when null). This is the shim path PolicySet uses for its lazy
  /// index; decisions are byte-identical to the string evaluate.
  [[nodiscard]] static CompiledPolicyImage from_policy_set(
      const PolicySet& set, std::shared_ptr<mac::SidTable> sids = nullptr);

  // -- evaluation (the hot path; no strings, no allocation) --------------

  /// Adjudicates one pre-resolved request. The returned Decision is
  /// byte-identical to PolicySet::evaluate on the equivalent string
  /// request (same rule id, same reason text).
  [[nodiscard]] Decision evaluate(const SidRequest& request) const;

  /// Answers `requests[i]` into `out[i]` for every i: one pass, no
  /// per-element function-call or Decision-construction overhead — the
  /// copy-assignment into `out` reuses each Decision's existing string
  /// capacity, so a warm caller-owned buffer makes the whole batch
  /// allocation-free. Throws std::invalid_argument when the spans differ
  /// in length.
  void evaluate_batch(std::span<const SidRequest> requests,
                      std::span<Decision> out) const;

  // -- request resolution (the string edge) ------------------------------

  /// Translates a string request into SID space without growing the
  /// interner: unknown subjects/objects resolve to kNullSid (they can
  /// still match wildcard rules — exactly the string semantics) and an
  /// unknown mode resolves to kUnresolvedSid (matches only mode-free
  /// rules, never "all modes").
  [[nodiscard]] SidRequest resolve(const AccessRequest& request) const noexcept;

  /// SID of an operational mode name; kUnresolvedSid when the image's
  /// interner has never seen it, kNullSid for the empty (mode-less) id.
  [[nodiscard]] mac::Sid mode_sid(const threat::ModeId& mode) const noexcept;

  // -- observation -------------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] bool default_allow() const noexcept { return default_allow_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::vector<Entry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const std::string& rule_id(std::uint32_t meta) const {
    return metas_.at(meta).id;
  }
  [[nodiscard]] mac::Sid wildcard_sid() const noexcept { return wildcard_sid_; }

  /// The interner every name in this image resolved through. Shared so
  /// fleet callers can pre-resolve their own identities into the same
  /// SID space (growing the table never changes an issued SID).
  [[nodiscard]] const std::shared_ptr<mac::SidTable>& sid_table() const noexcept {
    return sids_;
  }
  [[nodiscard]] const mac::SidTable& sids() const noexcept { return *sids_; }

  /// Stable 64-bit fingerprint over name, version, flags and the packed
  /// entries (via their audit strings) — the integrity anchor the
  /// persistent-image serialisation will reuse.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

 private:
  CompiledPolicyImage() = default;

  /// The persistent-blob subsystem (core/policy_blob.h) serialises the
  /// sealed representation verbatim and reconstructs it without
  /// recompiling, and the delta OTA channel (core/policy_delta.h) diffs
  /// two sealed images and replays the edit script into a fresh one;
  /// they are the only code besides Builder allowed behind the
  /// immutability boundary.
  friend class PolicyBlobWriter;
  friend class PolicyBlobReader;
  friend class PolicyDeltaWriter;
  friend class PolicyDeltaReader;
  friend struct PolicyDeltaDetail;  // shared writer/reader delta helpers

  /// Audit payload per rule, materialised once at build time.
  struct Meta {
    std::string id;
    Decision allow;       // {true, id, rule.to_string()}
    Decision deny_read;   // {false, id, "permission .. does not include read"}
    Decision deny_write;
  };

  /// Materialises one rule's audit payload (the allow Decision plus the
  /// REACHABLE permission-mismatch deny texts) in place at the back of
  /// `into`. Shared by Builder::add_rule and the blob reader so a loaded
  /// Meta can never drift from a compiled one; fills fields directly
  /// (this runs per rule on the blob-boot path).
  static void emplace_meta(std::vector<Meta>& into, std::string id,
                           threat::Permission permission,
                           std::string allow_reason);

  [[nodiscard]] static std::uint64_t pair_key(mac::Sid subject,
                                              mac::Sid object) noexcept {
    return (static_cast<std::uint64_t>(subject) << 32) |
           static_cast<std::uint64_t>(object);
  }

  /// Request-side mode bits: all-ones for a mode-less request, the mode's
  /// bit when the image knows it, 0 otherwise (matches only mask-0 rules).
  [[nodiscard]] std::uint64_t request_mode_bits(mac::Sid mode) const noexcept;

  /// evaluate() with the request's mode bits already resolved (the batch
  /// path hoists the resolution across same-mode runs).
  [[nodiscard]] const Decision& evaluate_impl(
      const SidRequest& request, std::uint64_t mode_bits) const noexcept;

  /// Freezes index_build_ into the flat open-addressing probe structure.
  void seal_index();

  std::string name_;
  std::uint64_t version_ = 0;
  bool default_allow_ = false;
  std::shared_ptr<mac::SidTable> sids_;
  mac::Sid wildcard_sid_ = mac::kNullSid;
  std::vector<Entry> entries_;
  std::vector<Meta> metas_;
  /// Distinct mode SIDs in first-appearance order; position = mask bit.
  std::vector<mac::Sid> mode_sids_;
  /// Build-time grouping; sealed into the flat tables by build().
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_build_;
  /// Sealed (subject SID, object SID) index: a power-of-two
  /// open-addressing slot array (mac::mix_av_key probing, key 0 = empty —
  /// interned SIDs are never null, so no rule key is 0) whose slots span
  /// a flattened entry-indices array. Four probes (exact/wildcard
  /// combinations) cover every candidate for a request, each one costing
  /// a mixed hash and a linear scan — no node chasing, no allocation.
  std::vector<std::uint64_t> slot_keys_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> slot_spans_;
  std::vector<std::uint32_t> flat_index_;
  Decision default_allow_decision_;
  Decision default_deny_decision_;
};

class CompiledPolicyImage::Builder {
 public:
  /// When `sids` is null a fresh interner is created; pass a shared one
  /// so labels, policy databases and images agree on SID space.
  Builder(std::string name, std::uint64_t version,
          std::shared_ptr<mac::SidTable> sids = nullptr);

  void set_default_allow(bool allow) noexcept { image_.default_allow_ = allow; }

  /// Adds one rule. `subject`/`object` are names ("*" = wildcard);
  /// `modes` are mode names in rule order (empty = all modes);
  /// `allow_reason` is the exact audit text an allow Decision carries
  /// (PolicyRule::to_string form). Throws std::length_error past
  /// kMaxImageModes distinct modes.
  void add_rule(std::string id, std::string_view subject,
                std::string_view object, threat::Permission permission,
                std::span<const threat::ModeId> modes, int priority,
                std::string allow_reason);

  [[nodiscard]] CompiledPolicyImage build();

 private:
  [[nodiscard]] std::uint64_t mode_mask_for(
      std::span<const threat::ModeId> modes);

  CompiledPolicyImage image_;
};

}  // namespace psme::core
