// psme::core — the SID-native compiled form of a policy set.
//
// A CompiledPolicyImage is what a fleet actually evaluates against: every
// subject, object and mode name has been interned through a shared
// mac::SidTable exactly once, rules are packed fixed-size entries indexed
// by the (subject SID, object SID) pair, and the audit strings a Decision
// carries (rule id, allow reason) are materialised at compile time as
// prototype Decisions. Evaluation therefore never hashes, compares or
// constructs a string — a batched evaluation is index probes plus
// copy-assignments into caller-owned Decision storage (which reuses its
// heap capacity across ticks).
//
// Storage comes in two modes behind one query API (DESIGN.md "Zero-copy
// image views"):
//  - OWNED: the compile, v1-blob-load and delta-apply paths fill the
//    *_store_ vectors; the evaluation views alias them.
//  - BORROWED: the v2 zero-copy blob loader points the views straight
//    into the validated blob buffer (entries, index, mode table, meta
//    arena all used in place; a shared PolicyBuffer pins the bytes).
//    Audit Metas are then materialised LAZILY, at most once per rule, by
//    a lock-free page table — the first decision that needs a rule's
//    audit strings builds them from the arena; every later one reuses
//    the same heap Meta, so the evaluate API still returns stable
//    references and boot stays O(1) in policy size.
//
// Images are immutable once built; millions of simulated vehicles share
// one image and one interner (the paper's fleet-scale affordability
// argument). PolicySet keeps its string-rule form as the editable source
// of truth and lazily compiles itself to an image; PolicyCompiler can
// skip the string stage entirely and emit an image straight from a
// threat model (compile_to_image).
//
// Concurrency (DESIGN.md "Concurrency model"): a sealed image is an
// immutable value — Builder::build() is the only producer, there are no
// mutators, and every observer is const. Share it BY REFERENCE across
// any number of threads and call evaluate / evaluate_batch / resolve
// concurrently without synchronisation, provided build() happened-before
// the readers started (thread creation, or a published snapshot, gives
// that for free). Debug builds assert sealed-ness on the evaluate paths.
// car::FleetEvaluator::tick_parallel leans on exactly this guarantee.
// Lazy Meta materialisation in borrowed mode is the one internal
// mutation, and it is made read-equivalent: a compare-exchange installs
// each Meta exactly once, losers delete their copy, and an installed
// Meta is never freed before the image dies — references stay stable.
// The one shared MUTABLE neighbour is the SidTable behind sid_table():
// interning a NEW name grows it, so the single-writer rule applies there.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/policy.h"
#include "mac/sid_table.h"

namespace psme::core {

class PolicyBuffer;

/// Widest mode condition an image entry can carry: one bit per distinct
/// operational mode named by any rule. Sixty-four is far beyond any real
/// vehicle (the case study has three); the builder throws beyond it.
inline constexpr std::size_t kMaxImageModes = 64;

class CompiledPolicyImage {
 public:
  /// One packed rule. `subject`/`object` equal to wildcard_sid() encode
  /// the "*" wildcard; `mode_mask` is a bitmask over the image's mode
  /// table (0 = applies in every mode); `meta` indexes the audit-string
  /// table. The matching, priority, specificity and first-wins tie-break
  /// semantics are exactly PolicySet::evaluate's.
  ///
  /// The layout is pinned (static_asserts in core/policy_blob.cpp) to
  /// exactly the 32-byte little-endian v2 wire record, so the zero-copy
  /// loader can view a blob's entry section in place on a little-endian
  /// host. The reserved bytes are the wire padding, always zero.
  struct Entry {
    mac::Sid subject = mac::kNullSid;                           // offset 0
    mac::Sid object = mac::kNullSid;                            // offset 4
    threat::Permission permission = threat::Permission::kNone;  // offset 8
    std::uint8_t specificity = 0;  // offset 9; 0 = both wildcards .. 2 = exact
    std::uint8_t reserved0 = 0;    // offset 10
    std::uint8_t reserved1 = 0;    // offset 11
    std::int32_t priority = 0;     // offset 12
    std::uint64_t mode_mask = 0;   // offset 16
    std::uint32_t meta = 0;        // offset 24
    std::uint32_t reserved2 = 0;   // offset 28
  };

  /// One sealed-index slot's span over the flat entry-index array.
  /// Layout-pinned like Entry: the pair is the 8-byte v2 wire record.
  struct SlotSpan {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  /// Accumulates entries, interning every name exactly once. Used by
  /// PolicyCompiler::compile_to_image and by from_policy_set; not a
  /// public extension point for ad-hoc rule soups — go through PolicySet
  /// for that. (Defined after the class: it holds the image it grows.)
  class Builder;

  /// Compiles an existing string-rule set against `sids` (fresh table
  /// when null). This is the shim path PolicySet uses for its lazy
  /// index; decisions are byte-identical to the string evaluate.
  [[nodiscard]] static CompiledPolicyImage from_policy_set(
      const PolicySet& set, std::shared_ptr<mac::SidTable> sids = nullptr);

  CompiledPolicyImage(CompiledPolicyImage&&) = default;
  CompiledPolicyImage& operator=(CompiledPolicyImage&&) = default;
  CompiledPolicyImage(const CompiledPolicyImage& other);
  CompiledPolicyImage& operator=(const CompiledPolicyImage& other);
  ~CompiledPolicyImage() = default;

  // -- evaluation (the hot path; no strings, no allocation) --------------

  /// Adjudicates one pre-resolved request. The returned Decision is
  /// byte-identical to PolicySet::evaluate on the equivalent string
  /// request (same rule id, same reason text).
  [[nodiscard]] Decision evaluate(const SidRequest& request) const;

  /// Answers `requests[i]` into `out[i]` for every i through the staged
  /// pipeline (DESIGN.md "Vectorised decision core"): requests are
  /// processed in stack-resident chunks, each chunk running a resolve
  /// wave (pack pair keys + mode bits, consult a call-local
  /// (pair, mode-bits)→best memo), a probe wave (unresolved keys walk
  /// the sealed index through the active probe backend, origins
  /// prefetched ahead), and a copy wave (Decision materialisation).
  /// Decisions are byte-identical to per-element evaluate() — the memo
  /// is exact because best-entry selection never reads the access type.
  /// The copy-assignment into `out` reuses each Decision's existing
  /// string capacity, so a warm caller-owned buffer makes the whole
  /// batch allocation-free. Throws std::invalid_argument when the spans
  /// differ in length.
  void evaluate_batch(std::span<const SidRequest> requests,
                      std::span<Decision> out) const;

  /// The verdict-only twin of evaluate_batch: `allowed_out[i]` is 1 when
  /// `requests[i]` would be allowed, 0 when denied — always equal to
  /// `evaluate_batch`'s `out[i].allowed` (test-pinned). Runs the same
  /// staged pipeline but materialises a byte instead of copy-assigning a
  /// three-string Decision, which is what counting consumers (the fleet
  /// sweep's no-sink tick, allow-rate telemetry) actually read; on the
  /// acceptance workload the Decision copy wave is the single largest
  /// stage, so skipping it roughly halves ns/decision. Throws
  /// std::invalid_argument when the spans differ in length.
  void evaluate_batch_allowed(std::span<const SidRequest> requests,
                              std::span<std::uint8_t> allowed_out) const;

  // -- request resolution (the string edge) ------------------------------

  /// Translates a string request into SID space without growing the
  /// interner: unknown subjects/objects resolve to kNullSid (they can
  /// still match wildcard rules — exactly the string semantics) and an
  /// unknown mode resolves to kUnresolvedSid (matches only mode-free
  /// rules, never "all modes").
  [[nodiscard]] SidRequest resolve(const AccessRequest& request) const noexcept;

  /// SID of an operational mode name; kUnresolvedSid when the image's
  /// interner has never seen it, kNullSid for the empty (mode-less) id.
  [[nodiscard]] mac::Sid mode_sid(const threat::ModeId& mode) const noexcept;

  // -- observation -------------------------------------------------------

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  [[nodiscard]] bool default_allow() const noexcept { return default_allow_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::span<const Entry> entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::string_view rule_id(std::uint32_t meta) const {
    return meta_id_view(meta);
  }
  [[nodiscard]] mac::Sid wildcard_sid() const noexcept { return wildcard_sid_; }

  /// True when this image is a zero-copy view over a blob buffer rather
  /// than owned storage (observability/tests; the query API is mode-
  /// agnostic).
  [[nodiscard]] bool borrowed() const noexcept { return buffer_ != nullptr; }

  /// The interner every name in this image resolved through. Shared so
  /// fleet callers can pre-resolve their own identities into the same
  /// SID space (growing the table never changes an issued SID).
  [[nodiscard]] const std::shared_ptr<mac::SidTable>& sid_table() const noexcept {
    return sids_;
  }
  [[nodiscard]] const mac::SidTable& sids() const noexcept { return *sids_; }

  /// Stable 64-bit fingerprint over name, version, flags and the packed
  /// entries (via their audit strings) — the integrity anchor the
  /// persistent-image serialisation will reuse.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Total sealed-index slots inspected to answer this request, summed
  /// over its four wildcard-combination probe keys (each key inspects at
  /// least one slot). Diagnostics only — feeds the bench probe-depth
  /// histogram; the evaluation paths never call it.
  [[nodiscard]] std::uint32_t probe_depth(const SidRequest& request) const noexcept;

 private:
  CompiledPolicyImage() = default;

  /// The persistent-blob subsystem (core/policy_blob.h) serialises the
  /// sealed representation verbatim and reconstructs it without
  /// recompiling, and the delta OTA channel (core/policy_delta.h) diffs
  /// two sealed images and replays the edit script into a fresh one;
  /// they are the only code besides Builder allowed behind the
  /// immutability boundary.
  friend class PolicyBlobWriter;
  friend class PolicyBlobReader;
  friend class PolicyDeltaWriter;
  friend class PolicyDeltaReader;
  friend struct PolicyDeltaDetail;  // shared writer/reader delta helpers

  /// Audit payload per rule, materialised once at build time (owned
  /// mode) or on first use (borrowed mode).
  struct Meta {
    std::string id;
    Decision allow;       // {true, id, rule.to_string()}
    Decision deny_read;   // {false, id, "permission .. does not include read"}
    Decision deny_write;
  };

  /// Lock-free lazily-populated Meta table for borrowed images: a
  /// two-level page structure of atomic pointers, so attaching a 50k-rule
  /// blob allocates ~n/512 page pointers and nothing else. Each Meta is
  /// CAS-installed exactly once and never freed before the table dies,
  /// which is what keeps evaluate()'s returned references stable under
  /// concurrent first-touch (TSan-exercised).
  class LazyMetas {
   public:
    LazyMetas() = default;
    ~LazyMetas() { destroy(); }
    LazyMetas(const LazyMetas&) = delete;
    LazyMetas& operator=(const LazyMetas&) = delete;
    LazyMetas(LazyMetas&& other) noexcept
        : pages_(std::move(other.pages_)), page_count_(other.page_count_) {
      other.page_count_ = 0;
    }
    LazyMetas& operator=(LazyMetas&& other) noexcept {
      if (this != &other) {
        destroy();
        pages_ = std::move(other.pages_);
        page_count_ = other.page_count_;
        other.page_count_ = 0;
      }
      return *this;
    }

    /// Sizes the top-level page-pointer array for `count` rules. O(count
    /// / 512) — the only allocation a zero-copy attach pays for metas.
    void init(std::uint32_t count);

    /// The Meta for rule `i`, building it via `build(i)` (returning a
    /// `const Meta*` the table takes ownership of) on first touch.
    template <class BuildFn>
    [[nodiscard]] const Meta& at(std::uint32_t i, BuildFn&& build) const {
      std::atomic<Page*>& page_slot = pages_[i >> kPageBits];
      Page* page = page_slot.load(std::memory_order_acquire);
      if (page == nullptr) {
        Page* fresh = new Page();  // value-init: all slots null
        Page* expected = nullptr;
        if (page_slot.compare_exchange_strong(expected, fresh,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
          page = fresh;
        } else {
          delete fresh;
          page = expected;
        }
      }
      std::atomic<const Meta*>& slot = page->slot[i & (kPageSize - 1)];
      const Meta* meta = slot.load(std::memory_order_acquire);
      if (meta == nullptr) {
        const Meta* built = build(i);
        const Meta* expected = nullptr;
        if (slot.compare_exchange_strong(expected, built,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
          meta = built;
        } else {
          delete built;
          meta = expected;
        }
      }
      return *meta;
    }

   private:
    static constexpr std::uint32_t kPageBits = 9;
    static constexpr std::uint32_t kPageSize = 1u << kPageBits;
    struct Page {
      std::atomic<const Meta*> slot[kPageSize];
    };

    void destroy() noexcept;

    std::unique_ptr<std::atomic<Page*>[]> pages_;
    std::uint32_t page_count_ = 0;
  };

  /// Fills one rule's audit payload (the allow Decision plus the
  /// REACHABLE permission-mismatch deny texts). Shared by Builder, the
  /// blob readers and the lazy borrowed-mode materialiser, so a loaded
  /// Meta can never drift from a compiled one.
  static void fill_meta(Meta& meta, std::string id,
                        threat::Permission permission,
                        std::string allow_reason);

  /// fill_meta at the back of `into` (the owned-mode paths).
  static void emplace_meta(std::vector<Meta>& into, std::string id,
                           threat::Permission permission,
                           std::string allow_reason);

  /// Total audit metas (== entry count in either mode).
  [[nodiscard]] std::uint32_t meta_count() const noexcept {
    return meta_arena_ != nullptr ? meta_count_
                                  : static_cast<std::uint32_t>(metas_.size());
  }

  /// Rule id / allow reason of meta `m` WITHOUT materialising: owned
  /// mode reads metas_, borrowed mode views the blob arena (bounds-
  /// guarded — a corrupted sealed arena yields an empty view, never an
  /// out-of-bounds read). The fingerprint and the delta differ run on
  /// these, so a borrowed base image costs no Meta construction.
  [[nodiscard]] std::string_view meta_id_view(std::uint32_t m) const noexcept;
  [[nodiscard]] std::string_view meta_reason_view(
      std::uint32_t m) const noexcept;

  /// The full Meta for rule `m` (materialises on first touch in borrowed
  /// mode; direct vector access in owned mode).
  [[nodiscard]] const Meta& meta_at(std::uint32_t m) const;

  [[nodiscard]] static std::uint64_t pair_key(mac::Sid subject,
                                              mac::Sid object) noexcept {
    return (static_cast<std::uint64_t>(subject) << 32) |
           static_cast<std::uint64_t>(object);
  }

  /// Request-side mode bits: all-ones for a mode-less request, the mode's
  /// bit when the image knows it, 0 otherwise (matches only mask-0 rules).
  [[nodiscard]] std::uint64_t request_mode_bits(mac::Sid mode) const noexcept;

  /// evaluate() with the request's mode bits already resolved (the batch
  /// path hoists the resolution across same-mode runs). Not noexcept:
  /// borrowed-mode lazy Meta materialisation may allocate.
  [[nodiscard]] const Decision& evaluate_impl(const SidRequest& request,
                                              std::uint64_t mode_bits) const;

  /// Sealed-index span for one probe key, walked through the active
  /// probe backend. Bounds-guarded: an absent key or a corrupt span
  /// (offset/count outside the flat index) answers a count-0 span, so a
  /// sealed-trust blob fails CLOSED instead of walking out of bounds.
  [[nodiscard]] SlotSpan index_span(std::uint64_t key) const noexcept;

  /// Index of the winning entry for (subject, object, mode bits), or -1
  /// when no entry matches. `wildcard_span` is the pre-resolved
  /// (*,*) span — it is the same for every request, so the batch path
  /// resolves it once per call. Selection is a pure maximum under
  /// (priority desc, specificity desc, lowest index) and never reads the
  /// access type — which is what makes the batch memo exact.
  [[nodiscard]] std::int64_t best_entry_for(mac::Sid subject, mac::Sid object,
                                            std::uint64_t mode_bits,
                                            SlotSpan wildcard_span) const noexcept;

  /// Materialises the Decision for a best_entry_for result: access-type
  /// selection over the winner's Meta, or the default decision for -1 /
  /// a corrupt meta index. Not noexcept (borrowed-mode lazy Metas).
  [[nodiscard]] const Decision& decision_for(std::int64_t best,
                                             AccessType access) const;

  /// The allow bit decision_for's Decision would carry, without touching
  /// any Meta (no string access, no borrowed-mode materialisation) —
  /// the whole copy wave of the verdict-only batch path.
  [[nodiscard]] bool allowed_for(std::int64_t best,
                                 AccessType access) const noexcept;

  /// The shared staged chunk pipeline behind both batch entry points;
  /// `materialise(i, best, access)` writes element i's result.
  template <typename Materialise>
  void evaluate_batch_staged(std::span<const SidRequest> requests,
                             Materialise&& materialise) const;

  /// Freezes index_build_ into the flat open-addressing probe structure.
  void seal_index();

  /// Points the evaluation views at the owned stores. Every owned-mode
  /// construction path (build, v1 load, delta apply, deep copy) ends
  /// with this.
  void adopt_owned_storage() noexcept;

  std::string name_;
  std::uint64_t version_ = 0;
  bool default_allow_ = false;
  std::shared_ptr<mac::SidTable> sids_;
  mac::Sid wildcard_sid_ = mac::kNullSid;

  // -- owned stores (compile / v1 load / delta apply; empty when the
  //    image borrows from a blob buffer) ---------------------------------
  std::vector<Entry> entries_store_;
  std::vector<Meta> metas_;
  std::vector<mac::Sid> mode_store_;
  std::vector<std::uint64_t> slot_key_store_;
  std::vector<SlotSpan> slot_span_store_;
  std::vector<std::uint32_t> flat_store_;

  // -- the views evaluation actually runs on (aliases of the stores, or
  //    of buffer_'s bytes) -----------------------------------------------
  std::span<const Entry> entries_;
  /// Distinct mode SIDs in first-appearance order; position = mask bit.
  std::span<const mac::Sid> mode_sids_;
  /// Sealed (subject SID, object SID) index: a power-of-two
  /// open-addressing slot array (mac::mix_av_key probing, key 0 = empty —
  /// interned SIDs are never null, so no rule key is 0) whose slots span
  /// a flattened entry-indices array. Four probes (exact/wildcard
  /// combinations) cover every candidate for a request, each one costing
  /// a mixed hash and a linear scan — no node chasing, no allocation.
  std::span<const std::uint64_t> slot_keys_;
  std::span<const SlotSpan> slot_spans_;
  std::span<const std::uint32_t> flat_index_;

  // -- borrowed meta table (v2 blob arena) -------------------------------
  /// 2*meta_count_+1 offsets into meta_arena_: meta m's id is bytes
  /// [off[2m], off[2m+1]), its allow reason [off[2m+1], off[2m+2]).
  const std::uint32_t* meta_offsets_ = nullptr;
  const char* meta_arena_ = nullptr;
  std::size_t meta_arena_len_ = 0;
  std::uint32_t meta_count_ = 0;
  mutable LazyMetas lazy_metas_;

  /// Pins the blob bytes every borrowed view aliases (null = owned mode).
  std::shared_ptr<const PolicyBuffer> buffer_;

  /// Build-time grouping; sealed into the flat tables by build().
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_build_;
  Decision default_allow_decision_;
  Decision default_deny_decision_;
};

class CompiledPolicyImage::Builder {
 public:
  /// When `sids` is null a fresh interner is created; pass a shared one
  /// so labels, policy databases and images agree on SID space.
  Builder(std::string name, std::uint64_t version,
          std::shared_ptr<mac::SidTable> sids = nullptr);

  void set_default_allow(bool allow) noexcept { image_.default_allow_ = allow; }

  /// Adds one rule. `subject`/`object` are names ("*" = wildcard);
  /// `modes` are mode names in rule order (empty = all modes);
  /// `allow_reason` is the exact audit text an allow Decision carries
  /// (PolicyRule::to_string form). Throws std::length_error past
  /// kMaxImageModes distinct modes.
  void add_rule(std::string id, std::string_view subject,
                std::string_view object, threat::Permission permission,
                std::span<const threat::ModeId> modes, int priority,
                std::string allow_reason);

  [[nodiscard]] CompiledPolicyImage build();

 private:
  [[nodiscard]] std::uint64_t mode_mask_for(
      std::span<const threat::ModeId> modes);

  CompiledPolicyImage image_;
};

}  // namespace psme::core
