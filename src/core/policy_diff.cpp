#include "core/policy_diff.h"

#include <algorithm>
#include <sstream>

namespace psme::core {

std::string_view to_string(RuleChangeKind kind) noexcept {
  switch (kind) {
    case RuleChangeKind::kAdded: return "added";
    case RuleChangeKind::kRemoved: return "removed";
    case RuleChangeKind::kPermissionChanged: return "permission-changed";
    case RuleChangeKind::kConditionChanged: return "condition-changed";
  }
  return "?";
}

namespace {

const PolicyRule* find_rule(const PolicySet& set, const std::string& id) {
  for (const auto& rule : set.rules()) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

/// True when permission `to` allows something `from` does not.
bool widens(threat::Permission from, threat::Permission to) {
  const auto f = static_cast<std::uint8_t>(from);
  const auto t = static_cast<std::uint8_t>(to);
  return (t & ~f) != 0;
}

}  // namespace

bool PolicyDiff::widens_access() const noexcept {
  if (default_changed && default_now_allow) return true;
  return std::any_of(changes.begin(), changes.end(),
                     [](const RuleChange& c) { return c.widening; });
}

std::string PolicyDiff::render() const {
  std::ostringstream out;
  if (default_changed) {
    out << "! default flipped to " << (default_now_allow ? "ALLOW" : "deny")
        << '\n';
  }
  for (const auto& change : changes) {
    out << (change.widening ? "! " : "  ") << to_string(change.kind) << ' '
        << change.rule_id;
    if (!change.before.empty()) out << "\n    - " << change.before;
    if (!change.after.empty()) out << "\n    + " << change.after;
    out << '\n';
  }
  if (empty()) out << "(no changes)\n";
  return out.str();
}

PolicyDiff diff_policies(const PolicySet& before, const PolicySet& after) {
  PolicyDiff diff;
  diff.default_changed = before.default_allow() != after.default_allow();
  diff.default_now_allow = after.default_allow();

  for (const auto& old_rule : before.rules()) {
    const PolicyRule* new_rule = find_rule(after, old_rule.id);
    if (new_rule == nullptr) {
      RuleChange change;
      change.kind = RuleChangeKind::kRemoved;
      change.rule_id = old_rule.id;
      change.before = old_rule.to_string();
      // Removing a rule from a deny-by-default set only widens when the
      // rule was a *restriction shadowing a grant*; conservatively, treat
      // removal as widening unless the set is default-deny and the rule
      // granted something (removing a pure grant narrows).
      const bool was_pure_grant =
          old_rule.permission != threat::Permission::kNone &&
          !after.default_allow();
      change.widening = !was_pure_grant;
      diff.changes.push_back(std::move(change));
      continue;
    }
    if (old_rule.permission != new_rule->permission) {
      RuleChange change;
      change.kind = RuleChangeKind::kPermissionChanged;
      change.rule_id = old_rule.id;
      change.before = old_rule.to_string();
      change.after = new_rule->to_string();
      change.widening = widens(old_rule.permission, new_rule->permission);
      diff.changes.push_back(std::move(change));
      continue;
    }
    if (old_rule.modes != new_rule->modes ||
        old_rule.priority != new_rule->priority ||
        old_rule.subject != new_rule->subject ||
        old_rule.object != new_rule->object) {
      RuleChange change;
      change.kind = RuleChangeKind::kConditionChanged;
      change.rule_id = old_rule.id;
      change.before = old_rule.to_string();
      change.after = new_rule->to_string();
      // Broadened scope (fewer mode conditions, or wildcarded fields) can
      // widen; detecting precisely requires semantics, so flag any scope
      // change on a granting rule.
      change.widening = new_rule->permission != threat::Permission::kNone &&
                        (new_rule->modes.size() < old_rule.modes.size() ||
                         (new_rule->subject == "*" && old_rule.subject != "*") ||
                         (new_rule->object == "*" && old_rule.object != "*"));
      diff.changes.push_back(std::move(change));
    }
  }

  for (const auto& new_rule : after.rules()) {
    if (find_rule(before, new_rule.id) != nullptr) continue;
    RuleChange change;
    change.kind = RuleChangeKind::kAdded;
    change.rule_id = new_rule.id;
    change.after = new_rule.to_string();
    change.widening = new_rule.permission != threat::Permission::kNone;
    diff.changes.push_back(std::move(change));
  }
  return diff;
}

}  // namespace psme::core
