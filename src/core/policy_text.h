// psme::core — textual policy format.
//
// Policy definition updates travel as text (the paper's "policy definition
// update" artefact); this module defines the canonical grammar and a
// strict parser. One declaration per line:
//
//   # comment (blank lines ignored)
//   policyset <name> v<version> default=<allow|deny>
//   rule <id> <subject> <object> <R|W|RW|-> [in <mode>[,<mode>...]]
//        [prio <int>] [-- <rationale to end of line>]
//
// The header line must come first. Subjects/objects are tokens without
// whitespace; "*" is the wildcard. parse_policy_text() round-trips with
// format_policy_text(): parse(format(s)) reproduces s exactly (tested).
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "core/policy.h"

namespace psme::core {

/// Thrown by parse_policy_text with a 1-based line number and message.
class PolicyParseError : public std::runtime_error {
 public:
  PolicyParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}

  [[nodiscard]] std::size_t line() const noexcept { return line_; }

 private:
  std::size_t line_;
};

/// Parses the canonical text form. Throws PolicyParseError on any
/// malformed line; duplicate rule ids surface as std::invalid_argument
/// from PolicySet::add_rule.
[[nodiscard]] PolicySet parse_policy_text(std::string_view text);

/// Renders a policy set in the canonical text form.
[[nodiscard]] std::string format_policy_text(const PolicySet& set);

}  // namespace psme::core
