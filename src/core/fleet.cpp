#include "core/fleet.h"

#include <algorithm>
#include <stdexcept>

namespace psme::core {

FleetRollout::FleetRollout(FleetOptions options) : options_(std::move(options)) {
  if (options_.fleet_size == 0) {
    throw std::invalid_argument("FleetRollout: fleet_size must be positive");
  }
  if (options_.waves.empty()) {
    throw std::invalid_argument("FleetRollout: at least one wave required");
  }
  double prev = 0.0;
  for (const double w : options_.waves) {
    if (w <= prev || w > 1.0) {
      throw std::invalid_argument(
          "FleetRollout: waves must be strictly increasing fractions <= 1");
    }
    prev = w;
  }
}

RolloutReport FleetRollout::run(const PolicyBundle& bundle,
                                std::uint64_t verifier_key,
                                std::uint64_t initial_version) {
  sim::Scheduler sched;
  sim::Rng rng(options_.seed);

  struct Device {
    std::unique_ptr<SimplePolicyEngine> engine;
    std::unique_ptr<UpdateManager> manager;
    bool updated = false;
    bool straggler = false;
  };
  std::vector<Device> fleet(options_.fleet_size);
  for (auto& device : fleet) {
    device.engine = std::make_unique<SimplePolicyEngine>(
        PolicySet("device", initial_version));
    device.manager = std::make_unique<UpdateManager>(
        *device.engine, PolicySigner(verifier_key));
  }

  RolloutReport report;
  report.fleet_size = options_.fleet_size;
  double vulnerable_integral_ns = 0.0;  // device-nanoseconds
  sim::SimTime last_change{};
  std::size_t vulnerable = options_.fleet_size;

  auto account = [&](sim::SimTime now) {
    vulnerable_integral_ns +=
        static_cast<double>((now - last_change).count()) *
        static_cast<double>(vulnerable);
    last_change = now;
  };

  // Per-device delivery with retries.
  std::function<void(std::size_t, std::uint32_t)> deliver =
      [&](std::size_t idx, std::uint32_t attempt) {
        sched.schedule_in(options_.delivery_latency, [&, idx, attempt] {
          Device& device = fleet[idx];
          if (device.updated) return;
          if (rng.chance(options_.delivery_loss)) {
            if (attempt >= options_.max_attempts) {
              device.straggler = true;
              return;
            }
            deliver(idx, attempt + 1);
            return;
          }
          if (device.manager->apply(bundle) == std::nullopt) {
            device.updated = true;
            account(sched.now());
            --vulnerable;
            report.completed_at = sched.now();
          }
        });
      };

  // Schedule the waves over a deterministic device permutation (so waves
  // pick disjoint prefixes).
  std::vector<std::size_t> order(options_.fleet_size);
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.uniform(0, i - 1)]);
  }

  std::size_t already_targeted = 0;
  for (std::size_t w = 0; w < options_.waves.size(); ++w) {
    const auto target =
        static_cast<std::size_t>(options_.waves[w] *
                                 static_cast<double>(options_.fleet_size));
    const sim::SimTime at =
        sim::kSimStart + options_.wave_interval * static_cast<std::int64_t>(w);
    sched.schedule_at(at, [&, already_targeted, target, at] {
      for (std::size_t i = already_targeted; i < target; ++i) {
        deliver(order[i], 1);
      }
      report.waves.push_back(WaveRecord{
          at, target,
          static_cast<std::size_t>(
              std::count_if(fleet.begin(), fleet.end(),
                            [](const Device& d) { return d.updated; }))});
    });
    already_targeted = target;
  }

  sched.run();
  account(sched.now());

  report.updated = static_cast<std::size_t>(std::count_if(
      fleet.begin(), fleet.end(), [](const Device& d) { return d.updated; }));
  report.stragglers = static_cast<std::size_t>(std::count_if(
      fleet.begin(), fleet.end(), [](const Device& d) { return d.straggler; }));
  report.exposure_device_hours = vulnerable_integral_ns / 3.6e12;
  return report;
}

}  // namespace psme::core
