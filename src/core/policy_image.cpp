#include "core/policy_image.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/policy_buffer.h"
#include "mac/batch_probe.h"
#include "mac/stage_counters.h"

namespace psme::core {

namespace {

[[nodiscard]] Decision make_perm_deny(const std::string& id,
                                      threat::Permission permission,
                                      AccessType access) {
  // Only eight distinct deny texts exist (4 permissions x 2 accesses);
  // build each once and copy from the table — this runs per rule on the
  // compile path AND per loaded rule on the blob-boot path.
  static const auto reasons = [] {
    std::array<std::string, 8> table;
    for (std::size_t p = 0; p < 4; ++p) {
      for (std::size_t a = 0; a < 2; ++a) {
        table[p * 2 + a] =
            "permission " +
            std::string(threat::to_string(static_cast<Permission>(p))) +
            " does not include " +
            std::string(core::to_string(static_cast<AccessType>(a)));
      }
    }
    return table;
  }();
  return Decision::deny(
      id, reasons[static_cast<std::size_t>(permission) * 2 +
                  static_cast<std::size_t>(access)]);
}

}  // namespace

// ---------------------------------------------------------------- LazyMetas

void CompiledPolicyImage::LazyMetas::init(std::uint32_t count) {
  destroy();
  page_count_ = (count + kPageSize - 1) >> kPageBits;
  pages_ = page_count_ == 0
               ? nullptr
               : std::make_unique<std::atomic<Page*>[]>(page_count_);
}

void CompiledPolicyImage::LazyMetas::destroy() noexcept {
  if (pages_ == nullptr) {
    page_count_ = 0;
    return;
  }
  for (std::uint32_t p = 0; p < page_count_; ++p) {
    Page* page = pages_[p].load(std::memory_order_acquire);
    if (page == nullptr) continue;
    for (auto& slot : page->slot) {
      delete slot.load(std::memory_order_acquire);
    }
    delete page;
  }
  pages_.reset();
  page_count_ = 0;
}

// ------------------------------------------------------------------ Builder

CompiledPolicyImage::Builder::Builder(std::string name, std::uint64_t version,
                                      std::shared_ptr<mac::SidTable> sids) {
  image_.name_ = std::move(name);
  image_.version_ = version;
  image_.sids_ = sids != nullptr ? std::move(sids)
                                 : std::make_shared<mac::SidTable>();
  image_.wildcard_sid_ = image_.sids_->intern("*");
}

std::uint64_t CompiledPolicyImage::Builder::mode_mask_for(
    std::span<const threat::ModeId> modes) {
  std::uint64_t mask = 0;
  for (const threat::ModeId& mode : modes) {
    const mac::Sid sid = image_.sids_->intern(mode.value);
    std::size_t bit = 0;
    while (bit < image_.mode_store_.size() &&
           image_.mode_store_[bit] != sid) {
      ++bit;
    }
    if (bit == image_.mode_store_.size()) {
      if (bit == kMaxImageModes) {
        throw std::length_error(
            "CompiledPolicyImage: more than 64 distinct operational modes");
      }
      image_.mode_store_.push_back(sid);
    }
    mask |= std::uint64_t{1} << bit;
  }
  return mask;
}

void CompiledPolicyImage::fill_meta(Meta& meta, std::string id,
                                    threat::Permission permission,
                                    std::string allow_reason) {
  meta.allow.allowed = true;
  meta.allow.rule_id = id;
  meta.allow.reason = std::move(allow_reason);
  // Only the REACHABLE deny prototypes are materialised: evaluate hands
  // out deny_read exactly when the permission lacks read (and likewise
  // write), so e.g. a kReadWrite rule never needs either. Skipping them
  // trims compile and — more importantly — blob-boot reconstruction.
  if (!threat::allows_read(permission)) {
    meta.deny_read = make_perm_deny(id, permission, AccessType::kRead);
  }
  if (!threat::allows_write(permission)) {
    meta.deny_write = make_perm_deny(id, permission, AccessType::kWrite);
  }
  meta.id = std::move(id);
}

void CompiledPolicyImage::emplace_meta(std::vector<Meta>& into, std::string id,
                                       threat::Permission permission,
                                       std::string allow_reason) {
  fill_meta(into.emplace_back(), std::move(id), permission,
            std::move(allow_reason));
}

void CompiledPolicyImage::Builder::add_rule(
    std::string id, std::string_view subject, std::string_view object,
    threat::Permission permission, std::span<const threat::ModeId> modes,
    int priority, std::string allow_reason) {
  Entry entry;
  entry.subject =
      subject == "*" ? image_.wildcard_sid_ : image_.sids_->intern(subject);
  entry.object =
      object == "*" ? image_.wildcard_sid_ : image_.sids_->intern(object);
  entry.permission = permission;
  entry.specificity =
      static_cast<std::uint8_t>((entry.subject != image_.wildcard_sid_ ? 1 : 0) +
                                (entry.object != image_.wildcard_sid_ ? 1 : 0));
  entry.priority = priority;
  entry.mode_mask = mode_mask_for(modes);
  entry.meta = static_cast<std::uint32_t>(image_.metas_.size());

  emplace_meta(image_.metas_, std::move(id), permission,
               std::move(allow_reason));

  image_.index_build_[pair_key(entry.subject, entry.object)].push_back(
      static_cast<std::uint32_t>(image_.entries_store_.size()));
  image_.entries_store_.push_back(entry);
}

CompiledPolicyImage CompiledPolicyImage::Builder::build() {
  image_.default_allow_decision_ =
      Decision::allow("", "no matching rule; default allow");
  image_.default_deny_decision_ =
      Decision::deny("", "no matching rule; default deny");
  image_.seal_index();
  image_.adopt_owned_storage();
  return std::move(image_);
}

void CompiledPolicyImage::seal_index() {
  std::size_t slots = 1;
  while (slots < index_build_.size() * 2) slots <<= 1;
  slot_key_store_.assign(slots, 0);
  slot_span_store_.assign(slots, SlotSpan{});
  flat_store_.clear();
  flat_store_.reserve(entries_store_.size());
  const std::size_t mask = slots - 1;
  for (const auto& [key, indices] : index_build_) {
    std::size_t i = mac::mix_av_key(key) & mask;
    while (slot_key_store_[i] != 0) i = (i + 1) & mask;
    slot_key_store_[i] = key;
    slot_span_store_[i] = {static_cast<std::uint32_t>(flat_store_.size()),
                           static_cast<std::uint32_t>(indices.size())};
    flat_store_.insert(flat_store_.end(), indices.begin(), indices.end());
  }
  index_build_.clear();
}

void CompiledPolicyImage::adopt_owned_storage() noexcept {
  entries_ = entries_store_;
  mode_sids_ = mode_store_;
  slot_keys_ = slot_key_store_;
  slot_spans_ = slot_span_store_;
  flat_index_ = flat_store_;
}

// ------------------------------------------------------------ copy support

CompiledPolicyImage::CompiledPolicyImage(const CompiledPolicyImage& other)
    : name_(other.name_),
      version_(other.version_),
      default_allow_(other.default_allow_),
      sids_(other.sids_),
      wildcard_sid_(other.wildcard_sid_),
      entries_store_(other.entries_store_),
      metas_(other.metas_),
      mode_store_(other.mode_store_),
      slot_key_store_(other.slot_key_store_),
      slot_span_store_(other.slot_span_store_),
      flat_store_(other.flat_store_),
      meta_offsets_(other.meta_offsets_),
      meta_arena_(other.meta_arena_),
      meta_arena_len_(other.meta_arena_len_),
      meta_count_(other.meta_count_),
      buffer_(other.buffer_),
      index_build_(other.index_build_),
      default_allow_decision_(other.default_allow_decision_),
      default_deny_decision_(other.default_deny_decision_) {
  // Rebind each view: to this image's own store when the source aliased
  // its store, verbatim (shared buffer_) when the source borrowed.
  entries_ = other.entries_.data() == other.entries_store_.data()
                 ? std::span<const Entry>(entries_store_)
                 : other.entries_;
  mode_sids_ = other.mode_sids_.data() == other.mode_store_.data()
                   ? std::span<const mac::Sid>(mode_store_)
                   : other.mode_sids_;
  slot_keys_ = other.slot_keys_.data() == other.slot_key_store_.data()
                   ? std::span<const std::uint64_t>(slot_key_store_)
                   : other.slot_keys_;
  slot_spans_ = other.slot_spans_.data() == other.slot_span_store_.data()
                    ? std::span<const SlotSpan>(slot_span_store_)
                    : other.slot_spans_;
  flat_index_ = other.flat_index_.data() == other.flat_store_.data()
                    ? std::span<const std::uint32_t>(flat_store_)
                    : other.flat_index_;
  if (meta_arena_ != nullptr) lazy_metas_.init(meta_count_);
}

CompiledPolicyImage& CompiledPolicyImage::operator=(
    const CompiledPolicyImage& other) {
  if (this != &other) *this = CompiledPolicyImage(other);  // copy, then move
  return *this;
}

// --------------------------------------------------------- from_policy_set

CompiledPolicyImage CompiledPolicyImage::from_policy_set(
    const PolicySet& set, std::shared_ptr<mac::SidTable> sids) {
  Builder builder(set.name(), set.version(), std::move(sids));
  builder.set_default_allow(set.default_allow());
  for (const PolicyRule& rule : set.rules()) {
    builder.add_rule(rule.id, rule.subject, rule.object, rule.permission,
                     rule.modes, rule.priority, rule.to_string());
  }
  return builder.build();
}

// -------------------------------------------------------------- resolution

SidRequest CompiledPolicyImage::resolve(
    const AccessRequest& request) const noexcept {
  SidRequest resolved;
  resolved.subject = sids_->find(request.subject);
  resolved.object = sids_->find(request.object);
  resolved.access = request.access;
  resolved.mode = mode_sid(request.mode);
  return resolved;
}

mac::Sid CompiledPolicyImage::mode_sid(
    const threat::ModeId& mode) const noexcept {
  if (mode.value.empty()) return mac::kNullSid;
  const mac::Sid sid = sids_->find(mode.value);
  return sid == mac::kNullSid ? kUnresolvedSid : sid;
}

std::uint64_t CompiledPolicyImage::request_mode_bits(
    mac::Sid mode) const noexcept {
  if (mode == mac::kNullSid) return ~std::uint64_t{0};
  for (std::size_t bit = 0; bit < mode_sids_.size(); ++bit) {
    if (mode_sids_[bit] == mode) return std::uint64_t{1} << bit;
  }
  return 0;  // known request mode, but no rule ever names it
}

// -------------------------------------------------------------- meta access

std::string_view CompiledPolicyImage::meta_id_view(
    std::uint32_t m) const noexcept {
  if (meta_arena_ == nullptr) {
    return m < metas_.size() ? std::string_view(metas_[m].id)
                             : std::string_view{};
  }
  if (m >= meta_count_) return {};
  const std::uint32_t begin = meta_offsets_[2 * m];
  const std::uint32_t end = meta_offsets_[2 * m + 1];
  if (begin > end || end > meta_arena_len_) return {};  // corrupt sealed arena
  return {meta_arena_ + begin, end - begin};
}

std::string_view CompiledPolicyImage::meta_reason_view(
    std::uint32_t m) const noexcept {
  if (meta_arena_ == nullptr) {
    return m < metas_.size() ? std::string_view(metas_[m].allow.reason)
                             : std::string_view{};
  }
  if (m >= meta_count_) return {};
  const std::uint32_t begin = meta_offsets_[2 * m + 1];
  const std::uint32_t end = meta_offsets_[2 * m + 2];
  if (begin > end || end > meta_arena_len_) return {};  // corrupt sealed arena
  return {meta_arena_ + begin, end - begin};
}

const CompiledPolicyImage::Meta& CompiledPolicyImage::meta_at(
    std::uint32_t m) const {
  if (meta_arena_ == nullptr) return metas_[m];
  return lazy_metas_.at(m, [this](std::uint32_t i) {
    auto meta = std::make_unique<Meta>();
    fill_meta(*meta, std::string(meta_id_view(i)), entries_[i].permission,
              std::string(meta_reason_view(i)));
    return meta.release();
  });
}

// -------------------------------------------------------------- evaluation

CompiledPolicyImage::SlotSpan CompiledPolicyImage::index_span(
    std::uint64_t key) const noexcept {
  // The bounds guards here and in best_entry_for (one-revolution probe
  // bound, span bounds, entry and meta index range) are dead weight on a
  // validated image but are what makes evaluation over a sealed-trust
  // blob — whose index was attached without the O(n) semantic validation
  // pass — fail CLOSED on corruption instead of walking out of bounds
  // (DESIGN.md "Zero-copy image views").
  const std::size_t mask = slot_keys_.size() - 1;
  const std::size_t slot = mac::probe::find_slot(
      slot_keys_.data(), mask, key, mac::mix_av_key(key) & mask);
  if (slot_keys_[slot] != key) return {};
  const SlotSpan span = slot_spans_[slot];
  const std::size_t flat_size = flat_index_.size();
  if (span.offset > flat_size || span.count > flat_size - span.offset) {
    return {};
  }
  return span;
}

std::int64_t CompiledPolicyImage::best_entry_for(
    mac::Sid subject, mac::Sid object, std::uint64_t mode_bits,
    SlotSpan wildcard_span) const noexcept {
  // An entry is indexed under its literal (subject, object) SID pair, so
  // the candidates for a request are exactly the four wildcard
  // combinations. Revisiting an entry through two probes (a "*" request
  // identity) is harmless: the tie-break is idempotent, and a pure
  // maximum is also probe-order independent.
  const std::size_t entry_count = entries_.size();
  const Entry* best = nullptr;
  std::uint32_t best_index = 0;
  const auto scan = [&](SlotSpan span) noexcept {
    for (std::uint32_t c = 0; c < span.count; ++c) {
      const std::uint32_t i = flat_index_[span.offset + c];
      if (i >= entry_count) continue;
      const Entry& entry = entries_[i];
      if (entry.subject != wildcard_sid_ && entry.subject != subject) continue;
      if (entry.object != wildcard_sid_ && entry.object != object) continue;
      if (entry.mode_mask != 0 && (entry.mode_mask & mode_bits) == 0) continue;
      // Priority wins; ties break on specificity, then insertion order
      // (lowest index = first added) — identical to the string path.
      if (best == nullptr || entry.priority > best->priority ||
          (entry.priority == best->priority &&
           entry.specificity > best->specificity) ||
          (entry.priority == best->priority &&
           entry.specificity == best->specificity && i < best_index)) {
        best = &entry;
        best_index = i;
      }
    }
  };
  scan(index_span(pair_key(subject, object)));
  scan(index_span(pair_key(subject, wildcard_sid_)));
  scan(index_span(pair_key(wildcard_sid_, object)));
  scan(wildcard_span);
  return best == nullptr ? -1 : static_cast<std::int64_t>(best_index);
}

const Decision& CompiledPolicyImage::decision_for(std::int64_t best,
                                                  AccessType access) const {
  if (best < 0) {
    return default_allow_ ? default_allow_decision_ : default_deny_decision_;
  }
  const Entry& entry = entries_[static_cast<std::size_t>(best)];
  if (entry.meta >= meta_count()) {
    return default_allow_ ? default_allow_decision_ : default_deny_decision_;
  }
  const Meta& meta = meta_at(entry.meta);
  if (permits(entry.permission, access)) return meta.allow;
  return access == AccessType::kRead ? meta.deny_read : meta.deny_write;
}

bool CompiledPolicyImage::allowed_for(std::int64_t best,
                                      AccessType access) const noexcept {
  // Mirrors decision_for branch for branch (including the corrupt-meta
  // fallback to the default verdict) so the verdict-only batch path can
  // never disagree with the Decision path.
  if (best < 0) return default_allow_;
  const Entry& entry = entries_[static_cast<std::size_t>(best)];
  if (entry.meta >= meta_count()) return default_allow_;
  return permits(entry.permission, access);
}

const Decision& CompiledPolicyImage::evaluate_impl(
    const SidRequest& request, std::uint64_t mode_bits) const {
  // Sealed-image invariant (debug): build() froze the grouping into the
  // flat probe tables; concurrent const evaluation relies on nothing
  // structural being left to mutate lazily.
  assert(index_build_.empty() && !slot_keys_.empty() &&
         "CompiledPolicyImage: evaluate on an unsealed image");
  const SlotSpan wildcard_span =
      index_span(pair_key(wildcard_sid_, wildcard_sid_));
  return decision_for(
      best_entry_for(request.subject, request.object, mode_bits, wildcard_span),
      request.access);
}

Decision CompiledPolicyImage::evaluate(const SidRequest& request) const {
  return evaluate_impl(request, request_mode_bits(request.mode));
}

template <typename Materialise>
void CompiledPolicyImage::evaluate_batch_staged(
    std::span<const SidRequest> requests, Materialise&& materialise) const {
  if (requests.empty()) return;
  assert(index_build_.empty() && !slot_keys_.empty() &&
         "CompiledPolicyImage: evaluate on an unsealed image");

  // The (*,*) probe key is request-independent: resolve its span once
  // per call instead of hashing and probing it per element.
  const SlotSpan wildcard_span =
      index_span(pair_key(wildcard_sid_, wildcard_sid_));

  // Call-local memo over (pair key, mode bits) → winning entry. Exact,
  // not heuristic: best-entry selection never reads the access type, so
  // two requests sharing subject, object and mode bits share a winner
  // even when one reads and the other writes — precisely the fleet
  // workload shape (per-pair read/write alternation). Stack storage
  // keeps the batch path const and thread-safe.
  //
  // 2-way set-associative, 256 sets: a vehicle's question set holds ~100
  // distinct pairs, so a small direct-mapped memo thrashes on exactly
  // the alternation it exists to serve (two hot keys sharing a set evict
  // each other every revisit). Two ways with shift-to-second-way
  // insertion make any pair of colliding hot keys stable residents.
  constexpr std::size_t kMemoSets = 256;
  struct MemoSlot {
    std::uint64_t pair = 0;
    std::uint64_t bits = 0;
    std::int64_t best = 0;
    bool used = false;
  };
  struct MemoSet {
    MemoSlot way[2];
  };
  MemoSet memo[kMemoSets];

  // Chunked three-wave pipeline: resolve (pack keys, consult memo),
  // probe (walk the sealed index for memo misses, origins prefetched a
  // wave ahead), copy (materialise Decisions). All scratch is
  // stack-resident so the sweep stays allocation-free.
  constexpr std::size_t kChunk = 256;
  std::uint64_t pair_keys[kChunk];
  std::uint64_t bits[kChunk];
  std::int64_t best[kChunk];
  std::uint32_t miss[kChunk];
  std::uint32_t memo_slot_of[kChunk];

  // Fleet batches arrive vehicle-major, so the mode rarely changes
  // between neighbours — resolve its bit pattern once per run.
  mac::Sid run_mode = kUnresolvedSid;
  std::uint64_t mode_bits = 0;
  bool have_run = false;

  const std::size_t n = requests.size();
  const std::size_t index_mask = slot_keys_.size() - 1;
  for (std::size_t base = 0; base < n; base += kChunk) {
    const std::size_t count = std::min(kChunk, n - base);
    std::size_t miss_count = 0;
    {
      PSME_STAGE_TIMER(resolve, count);
      for (std::size_t j = 0; j < count; ++j) {
        const SidRequest& request = requests[base + j];
        if (!have_run || request.mode != run_mode) {
          run_mode = request.mode;
          mode_bits = request_mode_bits(run_mode);
          have_run = true;
        }
        const std::uint64_t pk = pair_key(request.subject, request.object);
        pair_keys[j] = pk;
        bits[j] = mode_bits;
        const std::size_t m = static_cast<std::size_t>(
                                  mac::mix_av_key(pk ^ mode_bits)) &
                              (kMemoSets - 1);
        memo_slot_of[j] = static_cast<std::uint32_t>(m);
        const MemoSet& set = memo[m];
        if (set.way[0].used && set.way[0].pair == pk &&
            set.way[0].bits == mode_bits) {
          best[j] = set.way[0].best;
        } else if (set.way[1].used && set.way[1].pair == pk &&
                   set.way[1].bits == mode_bits) {
          best[j] = set.way[1].best;
        } else {
          miss[miss_count++] = static_cast<std::uint32_t>(j);
        }
      }
    }
    if (miss_count != 0) {
      PSME_STAGE_TIMER(db_probe, miss_count);
      // Request every miss's first-probe cache line before any of them
      // resolves, so the index loads overlap each other instead of
      // serialising behind the candidate scans.
      for (std::size_t k = 0; k < miss_count; ++k) {
        mac::probe::prefetch_slot(
            slot_keys_.data(),
            static_cast<std::size_t>(mac::mix_av_key(pair_keys[miss[k]])) &
                index_mask);
      }
      for (std::size_t k = 0; k < miss_count; ++k) {
        const std::uint32_t j = miss[k];
        // Re-probe before computing: a chunk's resolve wave ran against
        // the memo state BEFORE any of this chunk's fills, so duplicate
        // keys within one chunk (the read/write alternation) all land in
        // the miss list — the first occurrence fills, the rest hit here.
        MemoSet& set = memo[memo_slot_of[j]];
        if (set.way[0].used && set.way[0].pair == pair_keys[j] &&
            set.way[0].bits == bits[j]) {
          best[j] = set.way[0].best;
          continue;
        }
        if (set.way[1].used && set.way[1].pair == pair_keys[j] &&
            set.way[1].bits == bits[j]) {
          best[j] = set.way[1].best;
          continue;
        }
        const SidRequest& request = requests[base + j];
        const std::int64_t b = best_entry_for(request.subject, request.object,
                                              bits[j], wildcard_span);
        best[j] = b;
        set.way[1] = set.way[0];
        set.way[0] = MemoSlot{pair_keys[j], bits[j], b, true};
      }
    }
    {
      PSME_STAGE_TIMER(copy, count);
      for (std::size_t j = 0; j < count; ++j) {
        materialise(base + j, best[j], requests[base + j].access);
      }
    }
  }
}

void CompiledPolicyImage::evaluate_batch(std::span<const SidRequest> requests,
                                         std::span<Decision> out) const {
  if (requests.size() != out.size()) {
    throw std::invalid_argument(
        "CompiledPolicyImage::evaluate_batch: span lengths differ");
  }
  evaluate_batch_staged(
      requests, [&](std::size_t i, std::int64_t best, AccessType access) {
        out[i] = decision_for(best, access);
      });
}

void CompiledPolicyImage::evaluate_batch_allowed(
    std::span<const SidRequest> requests,
    std::span<std::uint8_t> allowed_out) const {
  if (requests.size() != allowed_out.size()) {
    throw std::invalid_argument(
        "CompiledPolicyImage::evaluate_batch_allowed: span lengths differ");
  }
  evaluate_batch_staged(
      requests, [&](std::size_t i, std::int64_t best, AccessType access) {
        allowed_out[i] = allowed_for(best, access) ? 1 : 0;
      });
}

std::uint32_t CompiledPolicyImage::probe_depth(
    const SidRequest& request) const noexcept {
  if (slot_keys_.empty()) return 0;
  const std::size_t mask = slot_keys_.size() - 1;
  const std::uint64_t probes[4] = {
      pair_key(request.subject, request.object),
      pair_key(request.subject, wildcard_sid_),
      pair_key(wildcard_sid_, request.object),
      pair_key(wildcard_sid_, wildcard_sid_),
  };
  std::uint32_t depth = 0;
  for (const std::uint64_t key : probes) {
    depth += mac::probe::probe_depth(slot_keys_.data(), mask, key,
                                     mac::mix_av_key(key) & mask);
  }
  return depth;
}

// ------------------------------------------------------------- fingerprint

std::uint64_t CompiledPolicyImage::fingerprint() const noexcept {
  // Built on the bulk hash_chain primitives, not byte-wise FNV: the blob
  // loader recomputes this over every reconstructed image as its final
  // cross-check, so the fingerprint is on the vehicle's boot path. The
  // value is endian-stable (little-endian chunking) and may be embedded
  // in persistent blobs.
  std::uint64_t hash = mac::hash_chain_bytes(name_, mac::kFnv1aOffset);
  hash = mac::hash_chain_u64(version_, hash);
  hash = mac::hash_chain_u64(default_allow_ ? 1 : 0, hash);
  // The mode table and wildcard SID shape decision outcomes (mask bit
  // positions, wildcard matching), so the persistent-blob cross-check
  // must cover them too. Compile() and compile_to_image() intern in the
  // same order, so equal derivations still fingerprint equal.
  hash = mac::hash_chain_u64(wildcard_sid_, hash);
  for (const mac::Sid mode : mode_sids_) hash = mac::hash_chain_u64(mode, hash);
  // Entries feed four rotating lanes (entry i -> lane i mod 4), folded
  // deterministically at the end: the mix chain is latency-bound, and the
  // entry section is the bulk of the hash — four independent chains keep
  // the blob loader's cross-check off the boot path's critical path.
  // (Seed derivation and fold order are mac::HashLanes — the one
  // definition shared with hash_chain_bytes. The allow reason is read
  // through meta_reason_view, so a borrowed image fingerprints straight
  // off its arena without materialising a single Meta.)
  mac::HashLanes lanes(hash);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& entry = entries_[i];
    std::uint64_t& lane = lanes.lane[i & 3];
    lane = mac::hash_chain_u64(
        (static_cast<std::uint64_t>(entry.subject) << 32) | entry.object, lane);
    lane = mac::hash_chain_u64(entry.mode_mask, lane);
    lane = mac::hash_chain_u64((static_cast<std::uint64_t>(
                                    static_cast<std::uint32_t>(entry.priority))
                                << 8) |
                                   static_cast<std::uint64_t>(entry.permission),
                               lane);
    lane = mac::hash_chain_bytes(meta_reason_view(entry.meta), lane);
  }
  return mac::hash_chain_u64(entries_.size(), lanes.fold());
}

}  // namespace psme::core
