// psme::core — diffing policy sets.
//
// Before an OEM signs a policy update, the change must be reviewable:
// which rules were added, removed, or altered — and above all, where the
// update *widens* access relative to the fleet's current policy (the
// dangerous direction; a forged or sloppy update is most harmful when it
// grants). PolicyDiff computes exactly that, and `widens_access()` gives
// the release gate a single boolean to alarm on.
#pragma once

#include <string>
#include <vector>

#include "core/policy.h"

namespace psme::core {

enum class RuleChangeKind : std::uint8_t {
  kAdded,
  kRemoved,
  kPermissionChanged,
  kConditionChanged,  // modes or priority changed, permission identical
};

[[nodiscard]] std::string_view to_string(RuleChangeKind kind) noexcept;

struct RuleChange {
  RuleChangeKind kind = RuleChangeKind::kAdded;
  std::string rule_id;
  std::string before;  // rendered rule in the old set ("" when added)
  std::string after;   // rendered rule in the new set ("" when removed)
  /// True when the change can grant an access the old set denied: an added
  /// grant, a removed explicit deny/restriction, or a permission widened.
  bool widening = false;
};

struct PolicyDiff {
  std::vector<RuleChange> changes;
  bool default_changed = false;      // default allow/deny flipped
  bool default_now_allow = false;

  [[nodiscard]] bool empty() const noexcept {
    return changes.empty() && !default_changed;
  }
  /// True when any change (or the default flip) can widen access.
  [[nodiscard]] bool widens_access() const noexcept;
  /// Multi-line human-readable summary.
  [[nodiscard]] std::string render() const;
};

/// Structural diff from `before` to `after`.
[[nodiscard]] PolicyDiff diff_policies(const PolicySet& before,
                                       const PolicySet& after);

}  // namespace psme::core
