// psme::core — policies, policy sets and the policy engine interface.
//
// The paper's central artefact: a security model expressed not as prose
// guidelines but as machine-enforceable rules. A PolicyRule grants (or
// explicitly denies) read/write access between a subject (an entry point,
// node or application) and an object (an asset or resource), optionally
// conditioned on the device's operational mode. A PolicySet is a versioned
// collection of rules with deny-by-default semantics (least privilege,
// paper Sec. V-B citing Saltzer).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "threat/asset.h"
#include "threat/threat.h"

namespace psme::core {

using threat::Permission;

/// Read or write — the two access types Table I policies govern.
enum class AccessType : std::uint8_t { kRead, kWrite };

[[nodiscard]] std::string_view to_string(AccessType t) noexcept;

[[nodiscard]] constexpr bool permits(Permission p, AccessType t) noexcept {
  return t == AccessType::kRead ? threat::allows_read(p)
                                : threat::allows_write(p);
}

/// One access to adjudicate: "may <subject> <read|write> <object> while the
/// device is in <mode>?"
struct AccessRequest {
  std::string subject;   // entry point / node / application identity
  std::string object;    // asset / resource identity
  AccessType access = AccessType::kRead;
  threat::ModeId mode;   // empty value => mode-independent request

  [[nodiscard]] std::string to_string() const;
};

/// Outcome of policy evaluation.
struct Decision {
  bool allowed = false;
  std::string rule_id;   // empty when the default applied
  std::string reason;

  [[nodiscard]] static Decision allow(std::string rule_id, std::string reason);
  [[nodiscard]] static Decision deny(std::string rule_id, std::string reason);
};

/// A single rule. Subject/object accept the wildcard "*" (any); everything
/// else matches exactly. An empty `modes` list applies in every mode.
/// `permission` states what the subject may do; kNone is an explicit deny.
struct PolicyRule {
  std::string id;
  std::string subject;
  std::string object;
  Permission permission = Permission::kNone;
  std::vector<threat::ModeId> modes;
  /// Higher priority wins; ties broken by specificity (exact beats
  /// wildcard), then by insertion order (first wins).
  int priority = 0;
  std::string rationale;  // which threat motivated the rule

  [[nodiscard]] bool matches(const AccessRequest& request) const noexcept;

  /// 0 = both wildcards … 2 = both exact; used for tie-breaking.
  [[nodiscard]] int specificity() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Versioned, deny-by-default rule collection.
class PolicySet {
 public:
  PolicySet() = default;
  PolicySet(std::string name, std::uint64_t version)
      : name_(std::move(name)), version_(version) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  void set_version(std::uint64_t v) noexcept { version_ = v; }

  /// Appends a rule. Throws std::invalid_argument on duplicate rule id.
  void add_rule(PolicyRule rule);

  /// Removes a rule by id; returns true if it existed.
  bool remove_rule(std::string_view rule_id);

  [[nodiscard]] const std::vector<PolicyRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

  /// When true, requests matching no rule are allowed. Defaults to false
  /// (least privilege). Useful for incremental deployment where only the
  /// riskiest assets are policed.
  void set_default_allow(bool allow) noexcept { default_allow_ = allow; }
  [[nodiscard]] bool default_allow() const noexcept { return default_allow_; }

  /// Adjudicates a request against the rules. Candidate rules come from a
  /// pre-built (subject, object) hash index — four bucket probes covering
  /// the wildcard combinations — rather than a scan of every rule; the
  /// index is (re)built lazily after a mutation. Not thread-safe: the lazy
  /// rebuild writes through a mutable member.
  [[nodiscard]] Decision evaluate(const AccessRequest& request) const;

  /// Merges another set's rules into this one (policy *module* loading, as
  /// in SELinux's modular policies). Duplicate rule ids throw.
  void merge(const PolicySet& other);

  /// Stable 64-bit fingerprint over name, version, flags and all rules;
  /// used by the update mechanism for integrity checking.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Canonical single-line-per-rule text form (also the fingerprint input).
  [[nodiscard]] std::string serialize() const;

 private:
  [[nodiscard]] static std::uint64_t name_hash(std::string_view name) noexcept;
  [[nodiscard]] static std::uint64_t pair_key(std::uint64_t subject_hash,
                                              std::uint64_t object_hash) noexcept;
  void rebuild_index() const;

  std::string name_;
  std::uint64_t version_ = 0;
  bool default_allow_ = false;
  std::vector<PolicyRule> rules_;
  /// (subject hash, object hash) -> indices into rules_, ascending. Hash
  /// collisions are harmless: candidates are re-checked with matches().
  mutable std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
  mutable bool index_valid_ = false;
};

/// Abstract policy decision point. Implemented by the software MAC engine
/// (psme::mac::MacEngine) and wrapped by the hardware policy engine
/// (psme::hpe); SimplePolicyEngine is the reference implementation.
class PolicyEngine {
 public:
  virtual ~PolicyEngine() = default;

  [[nodiscard]] virtual Decision evaluate(const AccessRequest& request) = 0;
  [[nodiscard]] virtual std::string_view engine_name() const noexcept = 0;
};

/// PolicySet-backed engine with decision counters.
class SimplePolicyEngine final : public PolicyEngine {
 public:
  explicit SimplePolicyEngine(PolicySet set) : set_(std::move(set)) {}

  [[nodiscard]] Decision evaluate(const AccessRequest& request) override;
  [[nodiscard]] std::string_view engine_name() const noexcept override {
    return "simple";
  }

  /// Swaps in a new policy set (the paper's "policy update"); atomic from
  /// the caller's perspective — no request ever sees a half-updated set.
  void load(PolicySet set) { set_ = std::move(set); }

  [[nodiscard]] const PolicySet& policy() const noexcept { return set_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }
  [[nodiscard]] std::uint64_t denials() const noexcept { return denials_; }

 private:
  PolicySet set_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t denials_ = 0;
};

}  // namespace psme::core
