// psme::core — policies, policy sets and the policy engine interface.
//
// The paper's central artefact: a security model expressed not as prose
// guidelines but as machine-enforceable rules. A PolicyRule grants (or
// explicitly denies) read/write access between a subject (an entry point,
// node or application) and an object (an asset or resource), optionally
// conditioned on the device's operational mode. A PolicySet is a versioned
// collection of rules with deny-by-default semantics (least privilege,
// paper Sec. V-B citing Saltzer).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "mac/sid_table.h"
#include "threat/asset.h"
#include "threat/threat.h"

namespace psme::core {

class CompiledPolicyImage;

using threat::Permission;

/// Read or write — the two access types Table I policies govern.
enum class AccessType : std::uint8_t { kRead, kWrite };

[[nodiscard]] std::string_view to_string(AccessType t) noexcept;

[[nodiscard]] constexpr bool permits(Permission p, AccessType t) noexcept {
  return t == AccessType::kRead ? threat::allows_read(p)
                                : threat::allows_write(p);
}

/// One access to adjudicate: "may <subject> <read|write> <object> while the
/// device is in <mode>?"
struct AccessRequest {
  std::string subject;   // entry point / node / application identity
  std::string object;    // asset / resource identity
  AccessType access = AccessType::kRead;
  threat::ModeId mode;   // empty value => mode-independent request

  [[nodiscard]] std::string to_string() const;
};

/// Sentinel SID for a name that was *given* but is unknown to the
/// interner at hand. Distinct from mac::kNullSid ("no name given"): an
/// unresolved mode matches only mode-free rules, whereas a null mode
/// means the request is mode-independent and matches everything. Never
/// issued by any SidTable (it exceeds mac::kMaxTypeSid).
inline constexpr mac::Sid kUnresolvedSid = 0xFFFFFFFFu;

/// An access request whose identities are already resolved to SIDs — the
/// native currency of the compiled pipeline. For core::PolicySet /
/// CompiledPolicyImage the SIDs name the request's subject/object/mode in
/// the image's interner; for mac::MacEngine::evaluate_batch they are the
/// pre-resolved source/target *type* SIDs (mode is ignored there, as in
/// the scalar MacEngine::evaluate). Resolve once at the fleet boundary,
/// evaluate millions of times.
struct SidRequest {
  mac::Sid subject = mac::kNullSid;
  mac::Sid object = mac::kNullSid;
  AccessType access = AccessType::kRead;
  mac::Sid mode = mac::kNullSid;  // kNullSid => mode-independent request
};

/// Batch chunk size the staged decision pipelines are tuned for.
/// mac::MacEngine sizes its batch scratch to it (reserving up front and
/// shrinking back after an oversized batch) and car::FleetEvaluatorOptions
/// defaults batch_chunk to it, so the layers agree on one number: large
/// enough to amortise per-batch costs, small enough that a chunk's
/// requests and decisions stay cache-resident.
inline constexpr std::size_t kRecommendedBatchChunk = 4096;

/// Outcome of policy evaluation.
struct Decision {
  bool allowed = false;
  std::string rule_id;   // empty when the default applied
  std::string reason;

  [[nodiscard]] static Decision allow(std::string rule_id, std::string reason);
  [[nodiscard]] static Decision deny(std::string rule_id, std::string reason);
};

/// A single rule. Subject/object accept the wildcard "*" (any); everything
/// else matches exactly. An empty `modes` list applies in every mode.
/// `permission` states what the subject may do; kNone is an explicit deny.
struct PolicyRule {
  std::string id;
  std::string subject;
  std::string object;
  Permission permission = Permission::kNone;
  std::vector<threat::ModeId> modes;
  /// Higher priority wins; ties broken by specificity (exact beats
  /// wildcard), then by insertion order (first wins).
  int priority = 0;
  std::string rationale;  // which threat motivated the rule

  [[nodiscard]] bool matches(const AccessRequest& request) const noexcept;

  /// 0 = both wildcards … 2 = both exact; used for tie-breaking.
  [[nodiscard]] int specificity() const noexcept;

  [[nodiscard]] std::string to_string() const;
};

/// Versioned, deny-by-default rule collection.
class PolicySet {
 public:
  PolicySet() = default;
  PolicySet(std::string name, std::uint64_t version)
      : name_(std::move(name)), version_(version) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  void set_version(std::uint64_t v) noexcept { version_ = v; }

  /// Appends a rule. Throws std::invalid_argument on duplicate rule id.
  void add_rule(PolicyRule rule);

  /// Removes a rule by id; returns true if it existed.
  bool remove_rule(std::string_view rule_id);

  [[nodiscard]] const std::vector<PolicyRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

  /// When true, requests matching no rule are allowed. Defaults to false
  /// (least privilege). Useful for incremental deployment where only the
  /// riskiest assets are policed.
  void set_default_allow(bool allow) noexcept {
    default_allow_ = allow;
    invalidate();
  }
  [[nodiscard]] bool default_allow() const noexcept { return default_allow_; }

  /// Adjudicates a request against the rules. This is a shim over the
  /// SID-native path: the set lazily compiles itself to a
  /// CompiledPolicyImage after any mutation, the request's names are
  /// resolved to SIDs once (non-allocating transparent lookups), and the
  /// image answers. Concurrency: once the image is compiled (call image()
  /// or evaluate once before sharing), const evaluation is safe from any
  /// number of threads; the lazy COMPILE itself writes through mutable
  /// members and stays single-threaded — debug builds pin the compiling
  /// thread (DESIGN.md "Concurrency model"). Mutations always require
  /// exclusive access.
  [[nodiscard]] Decision evaluate(const AccessRequest& request) const;

  /// SID-native overload: adjudicates a request pre-resolved against
  /// sid_table() (see resolve()). Fleet callers resolve identities once
  /// and evaluate per tick without touching a string.
  [[nodiscard]] Decision evaluate(const SidRequest& request) const;

  /// Resolves a string request into this set's SID space without growing
  /// the interner (unknown names still match wildcard rules, unknown
  /// modes match only mode-free rules — the string semantics exactly).
  [[nodiscard]] SidRequest resolve(const AccessRequest& request) const;

  /// The set compiled to packed SID-space entries; (re)built lazily
  /// after a mutation. The reference is invalidated by any mutation.
  [[nodiscard]] const CompiledPolicyImage& image() const;

  /// Shared ownership of the compiled image: survives a later mutation
  /// of this set (the holder keeps answering from the snapshot it
  /// retained). This is what long-lived consumers (BindingCompiler)
  /// hold.
  [[nodiscard]] std::shared_ptr<const CompiledPolicyImage> image_ptr() const;

  /// The interner the lazy image compiles against (created on demand).
  /// Bind a shared table *before* first evaluation so labels, databases
  /// and images across a fleet agree on SID space.
  [[nodiscard]] const std::shared_ptr<mac::SidTable>& sid_table() const;
  void bind_sid_table(std::shared_ptr<mac::SidTable> sids);

  /// Merges another set's rules into this one (policy *module* loading, as
  /// in SELinux's modular policies). Duplicate rule ids throw.
  void merge(const PolicySet& other);

  /// Stable 64-bit fingerprint over name, version, flags and all rules;
  /// used by the update mechanism for integrity checking.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;

  /// Canonical single-line-per-rule text form (also the fingerprint input).
  [[nodiscard]] std::string serialize() const;

 private:
  [[nodiscard]] static std::uint64_t name_hash(std::string_view name) noexcept;
  /// Drops the compiled image (called by every mutation) and, in debug
  /// builds, re-opens the thread pin — a mutation implies the caller
  /// holds exclusive access again.
  void invalidate() noexcept;
  /// Debug builds: pins the first calling thread and asserts on any
  /// other. Guards the entry points that WRITE through the mutable
  /// lazy-compile members (compiling the image, creating the interner);
  /// const evaluation over an existing image bypasses it. No-op in
  /// release builds.
  void assert_single_thread() const noexcept;
  /// Compiles the image if absent (thread-pinned, see above).
  const CompiledPolicyImage& ensure_image() const;

  std::string name_;
  std::uint64_t version_ = 0;
  bool default_allow_ = false;
  std::vector<PolicyRule> rules_;
  /// Interner shared with image_ (and with any fleet caller that bound
  /// its own). Copies of this set share it; SIDs only ever grow.
  mutable std::shared_ptr<mac::SidTable> sids_;
  /// Lazily compiled SID-space form. Immutable once built, so copies of
  /// this set may share it; reset by any mutation.
  mutable std::shared_ptr<const CompiledPolicyImage> image_;
#ifndef NDEBUG
  /// DESIGN.md "Concurrency model": the lazy image compile writes
  /// through mutable members and is single-threaded; the first COMPILING
  /// evaluation pins the thread so concurrent compile misuse fails loudly
  /// instead of corrupting the image (const evaluation over a built image
  /// is thread-safe and skips the pin). Copies and moves start unpinned —
  /// a copy is a distinct object with its own (possibly different)
  /// owning thread.
  struct ThreadPin {
    std::thread::id id{};
    ThreadPin() noexcept = default;
    ThreadPin(const ThreadPin&) noexcept {}
    ThreadPin& operator=(const ThreadPin&) noexcept {
      id = {};
      return *this;
    }
  };
  mutable ThreadPin eval_pin_;
#endif
};

/// Abstract policy decision point. Implemented by the software MAC engine
/// (psme::mac::MacEngine) and wrapped by the hardware policy engine
/// (psme::hpe); SimplePolicyEngine is the reference implementation.
class PolicyEngine {
 public:
  virtual ~PolicyEngine() = default;

  [[nodiscard]] virtual Decision evaluate(const AccessRequest& request) = 0;
  [[nodiscard]] virtual std::string_view engine_name() const noexcept = 0;
};

/// PolicySet-backed engine with decision counters.
class SimplePolicyEngine final : public PolicyEngine {
 public:
  explicit SimplePolicyEngine(PolicySet set) : set_(std::move(set)) {}

  [[nodiscard]] Decision evaluate(const AccessRequest& request) override;
  [[nodiscard]] std::string_view engine_name() const noexcept override {
    return "simple";
  }

  /// Swaps in a new policy set (the paper's "policy update"); atomic from
  /// the caller's perspective — no request ever sees a half-updated set.
  void load(PolicySet set) { set_ = std::move(set); }

  [[nodiscard]] const PolicySet& policy() const noexcept { return set_; }
  [[nodiscard]] std::uint64_t evaluations() const noexcept { return evaluations_; }
  [[nodiscard]] std::uint64_t denials() const noexcept { return denials_; }

 private:
  PolicySet set_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t denials_ = 0;
};

}  // namespace psme::core
