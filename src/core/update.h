// psme::core — policy distribution and update.
//
// The paper's key operational claim (Sec. V-A.3): when a new threat is
// discovered after deployment, the OEM distributes a *policy definition
// update* instead of redesigning hardware/software. This module provides:
//
//  * PolicyBundle  — a policy set packaged with version metadata and an
//    integrity tag (a keyed hash standing in for a real HMAC/signature;
//    see DESIGN.md's substitution table — the security argument only needs
//    "device rejects bundles not produced by the OEM key");
//  * UpdateManager — the on-device agent: verifies, applies atomically,
//    keeps history, can roll back;
//  * UpdateChannel — a simulated OTA distribution channel with latency and
//    loss, so benches can measure the exposure window end to end.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/policy.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace psme::core {

/// Keyed integrity tag over a policy set. NOT cryptography — a stand-in
/// with the right interface (key holder can sign; others cannot forge
/// except by accident) for simulation purposes.
class PolicySigner {
 public:
  explicit PolicySigner(std::uint64_t key) : key_(key) {}

  [[nodiscard]] std::uint64_t sign(const PolicySet& set) const noexcept;
  [[nodiscard]] bool verify(const PolicySet& set, std::uint64_t tag) const noexcept;

 private:
  std::uint64_t key_;
};

struct PolicyBundle {
  PolicySet set;
  std::uint64_t tag = 0;  // integrity tag from PolicySigner::sign
  std::string origin;     // e.g. "oem.security-team"

  [[nodiscard]] std::uint64_t version() const noexcept { return set.version(); }
};

/// Why an update was rejected.
enum class UpdateError : std::uint8_t {
  kBadSignature,
  kVersionRollback,  // version not strictly greater than current
};

[[nodiscard]] std::string_view to_string(UpdateError e) noexcept;

/// On-device update agent guarding a SimplePolicyEngine.
class UpdateManager {
 public:
  /// `verifier` holds the device's provisioned key. `engine` must outlive
  /// the manager.
  UpdateManager(SimplePolicyEngine& engine, PolicySigner verifier);

  /// Validates and applies a bundle. On success the engine's policy is
  /// swapped atomically and the previous set is pushed onto the history.
  /// Returns nullopt on success, the rejection reason otherwise.
  std::optional<UpdateError> apply(const PolicyBundle& bundle);

  /// Restores the previous policy set. Returns false when no history.
  bool rollback();

  [[nodiscard]] std::uint64_t current_version() const noexcept;
  [[nodiscard]] std::size_t history_depth() const noexcept {
    return history_.size();
  }
  [[nodiscard]] std::uint64_t applied_count() const noexcept { return applied_; }
  [[nodiscard]] std::uint64_t rejected_count() const noexcept { return rejected_; }

 private:
  SimplePolicyEngine& engine_;
  PolicySigner verifier_;
  std::deque<PolicySet> history_;
  std::size_t history_limit_ = 8;
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;
};

/// Simulated OTA distribution channel. Devices subscribe; published
/// bundles arrive after a configurable latency and may be lost (each
/// delivery retried until `max_attempts`).
class UpdateChannel {
 public:
  using DeliveryCallback = std::function<void(const PolicyBundle&)>;

  UpdateChannel(sim::Scheduler& sched, sim::SimDuration latency,
                double loss_rate = 0.0, std::uint64_t seed = 99);

  /// Registers a device endpoint; returns its subscriber index.
  std::size_t subscribe(DeliveryCallback on_delivery);

  /// Publishes a bundle to all subscribers.
  void publish(PolicyBundle bundle);

  [[nodiscard]] std::uint64_t published() const noexcept { return published_; }
  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t lost() const noexcept { return lost_; }

  void set_max_attempts(std::uint32_t attempts) noexcept {
    max_attempts_ = attempts;
  }

 private:
  void deliver(std::size_t subscriber, PolicyBundle bundle,
               std::uint32_t attempt);

  sim::Scheduler& sched_;
  sim::SimDuration latency_;
  double loss_rate_;
  sim::Rng rng_;
  std::vector<DeliveryCallback> subscribers_;
  std::uint32_t max_attempts_ = 5;
  std::uint64_t published_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t lost_ = 0;
};

}  // namespace psme::core
