// psme::core — fleet-scale staged policy rollout.
//
// The paper's operational claim concerns a *fleet*: once a threat is
// discovered, every deployed device stays vulnerable until its policy is
// updated. This module models an OEM rollout: devices receive the signed
// bundle in staged waves (canary first), deliveries have latency and
// loss with bounded retries, and the report integrates fleet exposure
// (vulnerable device-hours) — the quantity the redesign-vs-update
// comparison ultimately trades on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/update.h"
#include "sim/event_queue.h"
#include "sim/rng.h"

namespace psme::core {

struct FleetOptions {
  std::size_t fleet_size = 1000;
  /// Cumulative fractions of the fleet targeted per wave (last should be
  /// 1.0). Example {0.01, 0.1, 0.5, 1.0}: 1% canary, then 10%, 50%, all.
  std::vector<double> waves = {0.01, 0.10, 0.50, 1.00};
  /// Time between wave starts.
  sim::SimDuration wave_interval = std::chrono::hours{6};
  /// Per-device delivery latency and loss (each attempt).
  sim::SimDuration delivery_latency = std::chrono::minutes{2};
  double delivery_loss = 0.05;
  std::uint32_t max_attempts = 5;
  std::uint64_t seed = 17;
};

struct WaveRecord {
  sim::SimTime at{};          // wave start
  std::size_t targeted = 0;   // devices targeted so far (cumulative)
  std::size_t updated = 0;    // devices actually updated so far
};

struct RolloutReport {
  std::vector<WaveRecord> waves;
  std::size_t fleet_size = 0;
  std::size_t updated = 0;      // final count
  std::size_t stragglers = 0;   // devices that exhausted retries
  /// Integral of (vulnerable devices) dt, in device-hours.
  double exposure_device_hours = 0.0;
  sim::SimTime completed_at{};  // time of the last successful update
};

/// Simulates a staged rollout of `bundle` to a fleet of devices, each
/// running an UpdateManager provisioned with `verifier_key`.
class FleetRollout {
 public:
  explicit FleetRollout(FleetOptions options = {});

  /// Runs to completion on a fresh scheduler; returns the report.
  /// `initial_version` is the policy version devices start with.
  [[nodiscard]] RolloutReport run(const PolicyBundle& bundle,
                                  std::uint64_t verifier_key,
                                  std::uint64_t initial_version = 1);

 private:
  FleetOptions options_;
};

}  // namespace psme::core
