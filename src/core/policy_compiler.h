// psme::core — compiling a threat model into an enforceable policy set.
//
// This is the bridge the paper adds to the traditional flow (Fig. 1): the
// "Determine countermeasure" step emits policies instead of (or alongside)
// guidelines. For every threat, each of its entry points is restricted at
// the threatened asset to the permission the threat analysis recommends
// (Table I's Policy column), conditioned on the modes the threat applies
// in, with rule priority derived from the DREAD risk band.
//
// The derivation itself runs in SID space: entity and mode names are
// interned once up front and the least-privilege merging (permission
// intersection, mode union, priority max) happens on integer identities.
// compile_to_image() packs the result straight into a
// CompiledPolicyImage — the fleet-deployable form — while compile()
// materialises the same derivation back into string rules for tooling
// that edits, diffs or serialises policy text.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.h"
#include "core/policy_image.h"
#include "mac/sid_table.h"
#include "threat/threat_model.h"

namespace psme::core {

struct PolicyDeltaStats;  // core/policy_delta.h — only compile_delta's
                          // optional out-param; the wire API stays out of
                          // this widely-included header

struct CompilerOptions {
  /// Name given to the produced policy set.
  std::string name = "derived";
  /// Version stamped on the produced set.
  std::uint64_t version = 1;
  /// If true, accesses not covered by any derived rule are allowed —
  /// useful when policing only the assets that appear in the threat model.
  bool default_allow = false;
  /// Base priority; per-rule priority = base + DREAD band weight, so rules
  /// countering riskier threats dominate on conflict.
  int base_priority = 0;
};

class PolicyCompiler {
 public:
  explicit PolicyCompiler(CompilerOptions options = {})
      : options_(std::move(options)) {}

  /// Derives one rule per (threat, entry point). Where several threats
  /// constrain the same (entry point, asset) pair in overlapping modes, the
  /// most restrictive permission (set intersection) is kept — least
  /// privilege requires honouring every constraint simultaneously.
  [[nodiscard]] PolicySet compile(const threat::ThreatModel& model) const;

  /// Derives the same rules as compile() but emits them as a packed
  /// CompiledPolicyImage directly — no intermediate string rule set, no
  /// re-interning downstream. When `sids` is provided the image is
  /// compiled against that interner so labels, policy databases and
  /// other images across a fleet share one SID space; otherwise a fresh
  /// table is created. Decisions from the image are byte-identical to
  /// compile()'s PolicySet on equivalent requests.
  [[nodiscard]] CompiledPolicyImage compile_to_image(
      const threat::ThreatModel& model,
      std::shared_ptr<mac::SidTable> sids = nullptr) const;

  /// Derives the single rule countering one threat (used by the OTA update
  /// path when a new threat is discovered after deployment).
  [[nodiscard]] PolicySet compile_threat(const threat::ThreatModel& model,
                                         const threat::ThreatId& id) const;

  /// As compile_threat, emitting the packed image form.
  [[nodiscard]] CompiledPolicyImage compile_threat_to_image(
      const threat::ThreatModel& model, const threat::ThreatId& id,
      std::shared_ptr<mac::SidTable> sids = nullptr) const;

  /// The diff-to-delta OTA path: compiles `model` against a prefix
  /// replica of `base`'s SID space (so the result is a SID-compatible
  /// extension — `base` and its interner are never mutated) and encodes
  /// the edit script from `base` to it as a fingerprint-anchored binary
  /// delta (core/policy_delta.h). This is what the release gate ships
  /// after core::diff_policies has been reviewed: the reviewed rule
  /// changes, in wire form, at a fraction of the full blob's bytes.
  /// When `stats` is non-null the script composition (copied / added /
  /// removed / changed entries) is reported through it.
  [[nodiscard]] std::vector<std::byte> compile_delta(
      const CompiledPolicyImage& base, const threat::ThreatModel& model,
      PolicyDeltaStats* stats = nullptr) const;

  /// Priority contribution of a DREAD band (exposed for tests).
  [[nodiscard]] static int band_weight(threat::RiskBand band) noexcept;

 private:
  CompilerOptions options_;
};

/// Intersection of two permissions (most restrictive combination):
/// R ∩ RW = R, R ∩ W = none, RW ∩ RW = RW, anything ∩ none = none.
[[nodiscard]] constexpr Permission intersect(Permission a, Permission b) noexcept {
  const auto bits = static_cast<std::uint8_t>(a) & static_cast<std::uint8_t>(b);
  return static_cast<Permission>(bits);
}

}  // namespace psme::core
