#include "core/policy_compiler.h"

#include <algorithm>
#include <stdexcept>

#include "core/policy_delta.h"

namespace psme::core {

int PolicyCompiler::band_weight(threat::RiskBand band) noexcept {
  switch (band) {
    case threat::RiskBand::kLow: return 0;
    case threat::RiskBand::kMedium: return 10;
    case threat::RiskBand::kHigh: return 20;
    case threat::RiskBand::kCritical: return 30;
  }
  return 0;
}

namespace {

/// One rule mid-derivation, already in SID space. Mode SIDs stay an
/// ordered list (not a mask) because merge order is observable: the
/// materialised rule text lists modes in first-cited order.
struct DerivedRule {
  std::string id;
  mac::Sid subject = mac::kNullSid;  // the wildcard SID encodes "*"
  mac::Sid object = mac::kNullSid;
  threat::Permission permission = threat::Permission::kNone;
  std::vector<mac::Sid> modes;  // empty = applies in every mode
  int priority = 0;
  std::string rationale;
};

/// True when the two mode lists can apply at the same instant: either list
/// empty means "all modes", otherwise they must share a mode.
bool modes_overlap(const std::vector<mac::Sid>& a,
                   const std::vector<mac::Sid>& b) {
  if (a.empty() || b.empty()) return true;
  return std::any_of(a.begin(), a.end(), [&](mac::Sid m) {
    return std::find(b.begin(), b.end(), m) != b.end();
  });
}

/// The SID-space derivation: interns every entity/mode name exactly once
/// and accumulates least-privilege-merged rules. Both compile() backends
/// (string PolicySet, packed image) materialise from this one pass, so
/// they cannot drift apart.
class Derivation {
 public:
  explicit Derivation(std::shared_ptr<mac::SidTable> sids)
      : sids_(sids != nullptr ? std::move(sids)
                              : std::make_shared<mac::SidTable>()),
        wildcard_(sids_->intern("*")) {}

  void emit_rules_for(const threat::Threat& threat,
                      const threat::ThreatModel& model, int base_priority) {
    const int priority =
        base_priority + PolicyCompiler::band_weight(threat.dread.band());
    const mac::Sid object = sids_->intern(threat.asset.value);
    std::vector<mac::Sid> threat_modes;
    threat_modes.reserve(threat.modes.size());
    for (const threat::ModeId& m : threat.modes) {
      threat_modes.push_back(sids_->intern(m.value));
    }

    for (const threat::EntryPointId& entry_point : threat.entry_points) {
      // The sentinel entry point "any" ("Any node" in the paper's Table I)
      // compiles to the wildcard subject.
      const bool any = entry_point.value == "any";
      const mac::Sid subject =
          any ? wildcard_ : sids_->intern(entry_point.value);

      // If a previously derived rule already constrains this pair in an
      // overlapping mode, tighten it in place instead of adding a
      // competitor: least privilege means every threat's constraint must
      // hold at once.
      DerivedRule* hit = nullptr;
      for (DerivedRule& rule : rules_) {
        if (rule.subject == subject && rule.object == object &&
            modes_overlap(rule.modes, threat_modes)) {
          hit = &rule;
          break;
        }
      }
      if (hit != nullptr) {
        hit->permission = intersect(hit->permission, threat.recommended_policy);
        hit->priority = std::max(hit->priority, priority);
        hit->rationale += "; " + threat.id.value;
        // Widen the mode condition to the union so both threats stay
        // covered; either side unconditional makes the merge unconditional.
        const bool either_all = hit->modes.empty() || threat_modes.empty();
        for (const mac::Sid m : threat_modes) {
          if (std::find(hit->modes.begin(), hit->modes.end(), m) ==
              hit->modes.end()) {
            hit->modes.push_back(m);
          }
        }
        if (either_all) hit->modes.clear();
        continue;
      }

      DerivedRule rule;
      rule.id = threat.id.value + "/" + (any ? "*" : entry_point.value);
      rule.subject = subject;
      rule.object = object;
      rule.permission = threat.recommended_policy;
      rule.modes = threat_modes;
      rule.priority = priority;
      rule.rationale = threat.id.value;
      const threat::Asset* asset = model.find_asset(threat.asset);
      if (asset != nullptr) rule.rationale += " (" + asset->name + ")";
      rules_.push_back(std::move(rule));
    }
  }

  /// Reconstructs the string form of one derived rule (reverse lookups
  /// happen here, once per compilation — never on a decision path).
  [[nodiscard]] PolicyRule materialize(const DerivedRule& derived) const {
    PolicyRule rule;
    rule.id = derived.id;
    rule.subject = sids_->name_of(derived.subject);  // wildcard SID -> "*"
    rule.object = sids_->name_of(derived.object);
    rule.permission = derived.permission;
    rule.modes.reserve(derived.modes.size());
    for (const mac::Sid m : derived.modes) {
      rule.modes.push_back(threat::ModeId{std::string(sids_->name_of(m))});
    }
    rule.priority = derived.priority;
    rule.rationale = derived.rationale;
    return rule;
  }

  [[nodiscard]] PolicySet to_policy_set(const std::string& name,
                                        std::uint64_t version,
                                        bool default_allow) const {
    PolicySet out(name, version);
    out.set_default_allow(default_allow);
    for (const DerivedRule& derived : rules_) {
      out.add_rule(materialize(derived));
    }
    return out;
  }

  [[nodiscard]] CompiledPolicyImage to_image(const std::string& name,
                                             std::uint64_t version,
                                             bool default_allow) const {
    CompiledPolicyImage::Builder builder(name, version, sids_);
    builder.set_default_allow(default_allow);
    for (const DerivedRule& derived : rules_) {
      // The audit text an allow Decision carries is the rule's canonical
      // string form — built through the same materialisation as the
      // PolicySet backend, so the two paths answer byte-identically.
      const PolicyRule rule = materialize(derived);
      builder.add_rule(rule.id, rule.subject, rule.object, rule.permission,
                       rule.modes, rule.priority, rule.to_string());
    }
    return builder.build();
  }

 private:
  std::shared_ptr<mac::SidTable> sids_;
  mac::Sid wildcard_;
  std::vector<DerivedRule> rules_;
};

}  // namespace

PolicySet PolicyCompiler::compile(const threat::ThreatModel& model) const {
  Derivation derivation(nullptr);
  for (const auto& threat : model.threats()) {
    derivation.emit_rules_for(threat, model, options_.base_priority);
  }
  return derivation.to_policy_set(options_.name, options_.version,
                                  options_.default_allow);
}

CompiledPolicyImage PolicyCompiler::compile_to_image(
    const threat::ThreatModel& model,
    std::shared_ptr<mac::SidTable> sids) const {
  Derivation derivation(std::move(sids));
  for (const auto& threat : model.threats()) {
    derivation.emit_rules_for(threat, model, options_.base_priority);
  }
  return derivation.to_image(options_.name, options_.version,
                             options_.default_allow);
}

PolicySet PolicyCompiler::compile_threat(const threat::ThreatModel& model,
                                         const threat::ThreatId& id) const {
  const threat::Threat* threat = model.find_threat(id);
  if (threat == nullptr) {
    throw std::invalid_argument("compile_threat: unknown threat '" + id.value + "'");
  }
  Derivation derivation(nullptr);
  derivation.emit_rules_for(*threat, model, options_.base_priority);
  return derivation.to_policy_set(options_.name + "/" + id.value,
                                  options_.version, options_.default_allow);
}

CompiledPolicyImage PolicyCompiler::compile_threat_to_image(
    const threat::ThreatModel& model, const threat::ThreatId& id,
    std::shared_ptr<mac::SidTable> sids) const {
  const threat::Threat* threat = model.find_threat(id);
  if (threat == nullptr) {
    throw std::invalid_argument("compile_threat: unknown threat '" + id.value + "'");
  }
  Derivation derivation(std::move(sids));
  derivation.emit_rules_for(*threat, model, options_.base_priority);
  return derivation.to_image(options_.name + "/" + id.value, options_.version,
                             options_.default_allow);
}

std::vector<std::byte> PolicyCompiler::compile_delta(
    const CompiledPolicyImage& base, const threat::ThreatModel& model,
    PolicyDeltaStats* stats) const {
  // The replica keeps the deployed base image (and any fleet-shared
  // interner behind it) untouched while guaranteeing the target compiles
  // into the same SID space: new names extend the prefix, existing names
  // keep their fleet-wide SIDs.
  const CompiledPolicyImage target = compile_to_image(
      model, replicate_sid_prefix(base.sids(), base.sids().size()));
  return PolicyDeltaWriter::write(base, target, stats);
}

}  // namespace psme::core
