#include "core/policy_compiler.h"

#include <algorithm>
#include <stdexcept>

namespace psme::core {

int PolicyCompiler::band_weight(threat::RiskBand band) noexcept {
  switch (band) {
    case threat::RiskBand::kLow: return 0;
    case threat::RiskBand::kMedium: return 10;
    case threat::RiskBand::kHigh: return 20;
    case threat::RiskBand::kCritical: return 30;
  }
  return 0;
}

namespace {

/// True when the two mode lists can apply at the same instant: either list
/// empty means "all modes", otherwise they must share a mode.
bool modes_overlap(const std::vector<threat::ModeId>& a,
                   const std::vector<threat::ModeId>& b) {
  if (a.empty() || b.empty()) return true;
  return std::any_of(a.begin(), a.end(), [&](const threat::ModeId& m) {
    return std::find(b.begin(), b.end(), m) != b.end();
  });
}

}  // namespace

void PolicyCompiler::emit_rules_for(const threat::Threat& threat,
                                    const threat::ThreatModel& model,
                                    PolicySet& out) const {
  const int priority = options_.base_priority + band_weight(threat.dread.band());
  for (const auto& entry_point : threat.entry_points) {
    // The sentinel entry point "any" ("Any node" in the paper's Table I)
    // compiles to the wildcard subject.
    const std::string subject =
        entry_point.value == "any" ? "*" : entry_point.value;
    const std::string object = threat.asset.value;

    // If a previously derived rule already constrains this pair in an
    // overlapping mode, tighten it in place instead of adding a competitor:
    // least privilege means every threat's constraint must hold at once.
    bool merged = false;
    // Collect then re-add, since PolicySet does not expose mutable rules.
    PolicySet rebuilt(out.name(), out.version());
    rebuilt.set_default_allow(out.default_allow());
    for (const auto& rule : out.rules()) {
      PolicyRule updated = rule;
      if (!merged && rule.subject == subject && rule.object == object &&
          modes_overlap(rule.modes, threat.modes)) {
        updated.permission = intersect(rule.permission, threat.recommended_policy);
        updated.priority = std::max(rule.priority, priority);
        updated.rationale += "; " + threat.id.value;
        // Widen the mode condition to the union so both threats stay covered.
        for (const auto& m : threat.modes) {
          if (std::find(updated.modes.begin(), updated.modes.end(), m) ==
              updated.modes.end()) {
            updated.modes.push_back(m);
          }
        }
        if (rule.modes.empty() || threat.modes.empty()) updated.modes.clear();
        merged = true;
      }
      rebuilt.add_rule(std::move(updated));
    }
    if (merged) {
      out = std::move(rebuilt);
      continue;
    }

    PolicyRule rule;
    rule.id = threat.id.value + "/" + subject;
    rule.subject = subject;
    rule.object = object;
    rule.permission = threat.recommended_policy;
    rule.modes = threat.modes;
    rule.priority = priority;
    rule.rationale = threat.id.value;
    const threat::Asset* asset = model.find_asset(threat.asset);
    if (asset != nullptr) rule.rationale += " (" + asset->name + ")";
    out.add_rule(std::move(rule));
  }
}

PolicySet PolicyCompiler::compile(const threat::ThreatModel& model) const {
  PolicySet out(options_.name, options_.version);
  out.set_default_allow(options_.default_allow);
  for (const auto& threat : model.threats()) {
    emit_rules_for(threat, model, out);
  }
  return out;
}

PolicySet PolicyCompiler::compile_threat(const threat::ThreatModel& model,
                                         const threat::ThreatId& id) const {
  const threat::Threat* threat = model.find_threat(id);
  if (threat == nullptr) {
    throw std::invalid_argument("compile_threat: unknown threat '" + id.value + "'");
  }
  PolicySet out(options_.name + "/" + id.value, options_.version);
  out.set_default_allow(options_.default_allow);
  emit_rules_for(*threat, model, out);
  return out;
}

}  // namespace psme::core
