#include "core/policy_synth.h"

#include <array>
#include <string>

#include "mac/sid_table.h"

namespace psme::core {

namespace {

/// splitmix64 step over the repo's shared finaliser — deterministic and
/// host-independent, which std::mt19937 distributions are not required
/// to be across standard libraries.
class SynthRng {
 public:
  explicit SynthRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    return mac::mix_av_key(state_);
  }

  /// Uniform-enough draw in [0, bound); bound is tiny next to 2^64, so
  /// the modulo bias is irrelevant for shaping test data.
  std::uint64_t below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

std::string padded(std::size_t n) {
  std::string digits = std::to_string(n);
  return std::string(digits.size() < 6 ? 6 - digits.size() : 0, '0') + digits;
}

/// Generates rule `i` of the stream for `options` — the ONE definition
/// both public entry points draw from, so set and image can never drift.
/// `rng` must have consumed exactly i rules' worth of draws.
PolicyRule synth_rule(const SynthPolicyOptions& options, std::size_t i,
                      SynthRng& rng) {
  constexpr std::array<threat::Permission, 4> kPermissions = {
      threat::Permission::kNone, threat::Permission::kRead,
      threat::Permission::kWrite, threat::Permission::kReadWrite};
  static const std::array<threat::ModeId, 3> kModes = {
      threat::ModeId{"normal"}, threat::ModeId{"degraded"},
      threat::ModeId{"fail-safe"}};
  // About one distinct endpoint per 8 rules keeps the (subject, object)
  // index populated like a real policy: several rules per pair, not one.
  const std::size_t subjects = options.rules / 8 > 0 ? options.rules / 8 : 1;
  constexpr std::size_t kAssets = 16;

  PolicyRule rule;
  rule.id = "SYN-" + padded(i + 1);
  // ~3% wildcard subjects, ~2% wildcard objects — enough that every
  // specificity tier and the wildcard index probes stay exercised.
  rule.subject = rng.below(33) == 0
                     ? "*"
                     : "ep.synth." + std::to_string(rng.below(subjects));
  rule.object = rng.below(47) == 0
                    ? "*"
                    : "asset.synth." + std::to_string(rng.below(kAssets));
  rule.permission = kPermissions[rng.below(kPermissions.size())];
  rule.priority = static_cast<int>(rng.below(7)) - 3;
  // Half the rules are mode-free; the rest name one or two modes.
  const std::uint64_t mode_draw = rng.below(6);
  if (mode_draw >= 3) {
    rule.modes.push_back(kModes[mode_draw - 3]);
    if (rng.below(3) == 0) {
      rule.modes.push_back(kModes[(mode_draw - 2) % kModes.size()]);
    }
  }
  rule.rationale = "synthetic rule " + std::to_string(i + 1);
  return rule;
}

}  // namespace

PolicySet synth_policy_set(const SynthPolicyOptions& options) {
  PolicySet set("synth-" + std::to_string(options.rules), options.version);
  set.set_default_allow(false);
  SynthRng rng(options.seed);
  for (std::size_t i = 0; i < options.rules; ++i) {
    set.add_rule(synth_rule(options, i, rng));
  }
  return set;
}

CompiledPolicyImage synth_policy_image(const SynthPolicyOptions& options) {
  CompiledPolicyImage::Builder builder(
      "synth-" + std::to_string(options.rules), options.version);
  builder.set_default_allow(false);
  SynthRng rng(options.seed);
  for (std::size_t i = 0; i < options.rules; ++i) {
    PolicyRule rule = synth_rule(options, i, rng);
    // The allow reason a compiled rule carries is its canonical string
    // form — same materialisation as the PolicySet compile path, so the
    // two entry points yield fingerprint-equal images.
    std::string reason = rule.to_string();
    builder.add_rule(std::move(rule.id), rule.subject, rule.object,
                     rule.permission, rule.modes, rule.priority,
                     std::move(reason));
  }
  return builder.build();
}

}  // namespace psme::core
