// psme::core — the persistent policy image: versioned binary blobs.
//
// The paper's affordability argument assumes the hot path is served from
// a compiled cache — but a vehicle that must re-run the threat-model →
// derivation → CompiledPolicyImage compile at every boot (and for every
// OTA policy update) pays the whole compiler before it can answer its
// first access request. This module is the same move SELinux makes with
// its binary policydb: the sealed image — packed SID-space entries, the
// open-addressing index, the mode table, the prototype-decision audit
// strings — and its backing mac::SidTable are serialised once at the OEM,
// and every vehicle boots by loading the blob. Format v2 goes one step
// further (the move Android ART makes with OAT files): every section is
// laid out 8-byte-aligned and position-independent, so the loader VIEWS
// the validated buffer in place — entries, index, mode table and both
// string arenas are borrowed, not copied, and boot-to-first-decision is
// O(1) in policy size. The loaded image produces byte-identical
// Decisions to the freshly compiled original (test-pinned); v1 blobs
// still load through the copying compat path.
//
// Trust boundary: blobs arrive over the air. A malformed blob — truncated,
// bit-flipped, wrong version, wrong endianness, inconsistent internal
// structure, or carrying a fingerprint that does not match its content —
// must be REJECTED with a PolicyBlobError, never dereferenced into UB.
// Every offset and count read from the wire is bounds-checked before use;
// the payload checksum and the image fingerprint are both verified. (The
// integrity tag is still the keyed PolicySigner at the bundle layer —
// this layer guarantees a hostile byte stream cannot corrupt memory or
// smuggle in an image that disagrees with its own manifest.)
//
// Two trust levels feed the v2 loader (BlobTrust below): kUntrusted runs
// the full single-pass validation — checksum, structural bounds,
// semantic SID-slot and index re-validation, fingerprint cross-check —
// exactly once per staged blob; kSealedStore attaches a blob that
// ALREADY passed that validation on this device (the local store a
// vehicle boots from, SELinux's policy.N / ART's OAT precedent) with
// O(1) structural checks only. Evaluation itself is bounds-guarded, so
// even a corrupted sealed blob fails closed rather than reaching UB.
//
// Format stability: the encoding is explicitly little-endian (serialised
// through shift-based byte stores, so any host can read or write it) and
// carries a format version plus an endianness tag. It is independent of
// compiler, struct padding and standard-library layout: CI round-trips a
// gcc-written blob through a clang reader and vice versa. See DESIGN.md
// "Zero-copy image views" for the v2 layout and evolution rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy_buffer.h"
#include "core/policy_image.h"
#include "core/wire_format.h"
#include "mac/sid_table.h"

namespace psme::core {

/// Rejection of a malformed, truncated, tampered or incompatible blob.
/// The message names the failed check (magic, version, checksum,
/// fingerprint, a specific structural bound) — OTA tooling logs it.
/// Derives from PolicyWireError (core/wire_format.h) so the blob and
/// delta formats share one catchable error taxonomy at the OTA boundary.
class PolicyBlobError : public PolicyWireError {
 public:
  using PolicyWireError::PolicyWireError;
};

/// Current on-wire format version (the zero-copy layout). Bump on any
/// layout change; readers reject versions they do not speak (no silent
/// best-effort parsing at a trust boundary).
inline constexpr std::uint32_t kPolicyBlobFormatVersion = 2;

/// The legacy copying layout; still readable (and writable, for interop
/// tooling) via the compat paths.
inline constexpr std::uint32_t kPolicyBlobFormatVersionV1 = 1;

/// The 8 magic bytes every blob starts with ("PSMEPIMG").
inline constexpr std::size_t kPolicyBlobMagicSize = 8;
[[nodiscard]] std::span<const std::byte, kPolicyBlobMagicSize>
policy_blob_magic() noexcept;

/// How much the loader may assume about a blob's provenance.
enum class BlobTrust {
  /// The OTA default: the blob crossed a trust boundary. Full one-pass
  /// validation — checksum, bounds, semantic SID-slot and index
  /// re-validation, fingerprint cross-check — before a single decision.
  kUntrusted,
  /// The blob sits in this device's local store and passed kUntrusted
  /// validation when it was staged. O(1) structural checks (header
  /// equations, alignment, section packing) only; content checks are
  /// skipped, which is what makes boot flat in policy size. Never use
  /// for bytes that crossed a trust boundary since staging.
  kSealedStore,
};

/// Header fields surfaced without a full load (OTA tooling: log what
/// arrived before deciding to stage it). probe() validates the fixed
/// header — magic, version, endianness, size, payload checksum — but not
/// the payload structure; only load() proves a blob usable.
struct PolicyBlobInfo {
  std::uint32_t format_version = 0;
  std::uint64_t fingerprint = 0;      // the sealed image's fingerprint()
  std::uint64_t image_version = 0;    // PolicySet/image version stamp
  std::uint32_t sid_count = 0;        // interned names carried
  std::uint32_t entry_count = 0;      // packed rules carried
  std::uint64_t total_size = 0;       // whole blob, header included
};

/// One payload section of a v2 blob, for layout introspection (the
/// `info` subcommand of examples/policy_blob_io.cpp; nothing on the
/// boot path uses this).
struct PolicyBlobSection {
  const char* name = "";
  std::size_t offset = 0;  // bytes from blob start; always 8-aligned
  std::size_t size = 0;    // unpadded section bytes
};

/// The derived v2 section table (header + every payload section, in
/// file order). Throws PolicyBlobError unless `blob` is a v2 blob with
/// a valid header.
[[nodiscard]] std::vector<PolicyBlobSection> policy_blob_layout(
    std::span<const std::byte> blob);

/// Serialises a sealed CompiledPolicyImage together with its backing
/// SidTable. The writer runs at the OEM (or in a provisioning tool) —
/// never on the vehicle's hot path.
class PolicyBlobWriter {
 public:
  /// The v2 (zero-copy layout) blob for `image`: header + 8-aligned
  /// payload sections, checksummed and carrying image.fingerprint(). The
  /// ENTIRE backing SidTable is serialised (names in SID order plus the
  /// probe-slot array), so identities interned beyond the policy's own
  /// names — fleet workload labels, say — survive the round trip with
  /// their SIDs intact, and a reader can attach the interner without
  /// rebuilding it.
  [[nodiscard]] static std::vector<std::byte> write(
      const CompiledPolicyImage& image);

  /// The legacy v1 (copying layout) blob — interop tooling and the
  /// compat read path's test anchor. Same content, packed layout,
  /// loads via the v1 reconstruction pass.
  [[nodiscard]] static std::vector<std::byte> write_v1(
      const CompiledPolicyImage& image);

  /// write() to a file. Throws PolicyBlobError when the file cannot be
  /// created or fully written.
  static void write_file(const CompiledPolicyImage& image,
                         const std::string& path);
};

/// Validates and loads a blob back into a sealed CompiledPolicyImage.
class PolicyBlobReader {
 public:
  /// Header-only inspection; throws PolicyBlobError on a blob whose
  /// fixed header fails validation (see PolicyBlobInfo). Speaks both
  /// format versions.
  [[nodiscard]] static PolicyBlobInfo probe(std::span<const std::byte> blob);

  /// Full validated load from a non-owning span. A v1 blob runs the
  /// copying reconstruction; a v2 blob is copied ONCE into a fresh
  /// PolicyBuffer and then borrowed (callers who already own a buffer
  /// should use the PolicyBuffer overload — no copy at all). When `sids`
  /// is null a fresh SidTable is created (v2: attached zero-copy over
  /// the blob's arena). When a table is provided, every carried name
  /// must intern to exactly its carried SID — an empty table, or one
  /// whose interning history is a prefix of the blob's, qualifies;
  /// anything else is a SID-space mismatch and is rejected (packed
  /// entries would silently mean different identities otherwise).
  /// Throws PolicyBlobError on any validation failure; on success the
  /// returned image is sealed and decision-for-decision identical to the
  /// image the blob was written from (fingerprint cross-checked).
  [[nodiscard]] static CompiledPolicyImage load(
      std::span<const std::byte> blob,
      std::shared_ptr<mac::SidTable> sids = nullptr);

  /// Zero-copy load: the returned image (and its attached SidTable)
  /// view `buffer`'s bytes in place, holding the shared_ptr so the
  /// buffer outlives every borrower. `trust` selects the validation
  /// depth (see BlobTrust; default full). v1 blobs fall back to the
  /// copying reconstruction (the buffer is then released on return).
  [[nodiscard]] static CompiledPolicyImage load(
      std::shared_ptr<const PolicyBuffer> buffer,
      std::shared_ptr<mac::SidTable> sids = nullptr,
      BlobTrust trust = BlobTrust::kUntrusted);

  /// load() from a file, mmap-backed where the platform allows (plain
  /// read() fallback otherwise — core/policy_buffer.h). Throws
  /// PolicyBlobError when the file cannot be read.
  [[nodiscard]] static CompiledPolicyImage load_file(
      const std::string& path, std::shared_ptr<mac::SidTable> sids = nullptr,
      BlobTrust trust = BlobTrust::kUntrusted);

 private:
  static CompiledPolicyImage load_v1(std::span<const std::byte> blob,
                                     std::shared_ptr<mac::SidTable> sids);
  static CompiledPolicyImage load_v2(
      std::shared_ptr<const PolicyBuffer> buffer,
      std::shared_ptr<mac::SidTable> sids, BlobTrust trust);
  /// Semantic re-validation of a bound (owned or borrowed) image's
  /// sealed index against its entries — shared by the v1 reconstruction
  /// and the v2 untrusted pass.
  static void validate_index(const CompiledPolicyImage& image,
                             std::uint32_t entry_count);
};

}  // namespace psme::core
