// psme::core — the persistent policy image: versioned binary blobs.
//
// The paper's affordability argument assumes the hot path is served from
// a compiled cache — but a vehicle that must re-run the threat-model →
// derivation → CompiledPolicyImage compile at every boot (and for every
// OTA policy update) pays the whole compiler before it can answer its
// first access request. This module is the same move SELinux makes with
// its binary policydb: the sealed image — packed SID-space entries, the
// open-addressing index, the mode table, the prototype-decision audit
// strings — and its backing mac::SidTable are serialised once at the OEM,
// and every vehicle boots by loading the blob: one contiguous buffer
// read, header validation, a single linear reconstruction pass, a
// fingerprint cross-check. No derivation, no string-rule parsing, no
// index build. The loaded image produces byte-identical Decisions to the
// freshly compiled original (test-pinned).
//
// Trust boundary: blobs arrive over the air. A malformed blob — truncated,
// bit-flipped, wrong version, wrong endianness, inconsistent internal
// structure, or carrying a fingerprint that does not match its content —
// must be REJECTED with a PolicyBlobError, never dereferenced into UB.
// Every offset and count read from the wire is bounds-checked before use;
// the payload checksum and the image fingerprint are both verified. (The
// integrity tag is still the keyed PolicySigner at the bundle layer —
// this layer guarantees a hostile byte stream cannot corrupt memory or
// smuggle in an image that disagrees with its own manifest.)
//
// Format stability: the encoding is explicitly little-endian (serialised
// through shift-based byte stores, so any host can read or write it) and
// carries a format version plus an endianness tag. It is independent of
// compiler, struct padding and standard-library layout: CI round-trips a
// gcc-written blob through a clang reader and vice versa. See DESIGN.md
// "Persistent image format" for the layout diagram and evolution rules.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/policy_image.h"
#include "core/wire_format.h"
#include "mac/sid_table.h"

namespace psme::core {

/// Rejection of a malformed, truncated, tampered or incompatible blob.
/// The message names the failed check (magic, version, checksum,
/// fingerprint, a specific structural bound) — OTA tooling logs it.
/// Derives from PolicyWireError (core/wire_format.h) so the blob and
/// delta formats share one catchable error taxonomy at the OTA boundary.
class PolicyBlobError : public PolicyWireError {
 public:
  using PolicyWireError::PolicyWireError;
};

/// Current on-wire format version. Bump on any layout change; readers
/// reject versions they do not speak (no silent best-effort parsing at a
/// trust boundary).
inline constexpr std::uint32_t kPolicyBlobFormatVersion = 1;

/// The 8 magic bytes every blob starts with ("PSMEPIMG").
inline constexpr std::size_t kPolicyBlobMagicSize = 8;
[[nodiscard]] std::span<const std::byte, kPolicyBlobMagicSize>
policy_blob_magic() noexcept;

/// Header fields surfaced without a full load (OTA tooling: log what
/// arrived before deciding to stage it). probe() validates the fixed
/// header — magic, version, endianness, size, payload checksum — but not
/// the payload structure; only load() proves a blob usable.
struct PolicyBlobInfo {
  std::uint32_t format_version = 0;
  std::uint64_t fingerprint = 0;      // the sealed image's fingerprint()
  std::uint64_t image_version = 0;    // PolicySet/image version stamp
  std::uint32_t sid_count = 0;        // interned names carried
  std::uint32_t entry_count = 0;      // packed rules carried
  std::uint64_t total_size = 0;       // whole blob, header included
};

/// Serialises a sealed CompiledPolicyImage together with its backing
/// SidTable. The writer runs at the OEM (or in a provisioning tool) —
/// never on the vehicle's hot path.
class PolicyBlobWriter {
 public:
  /// The blob for `image`: header + payload, checksummed and carrying
  /// image.fingerprint(). The ENTIRE backing SidTable is serialised (in
  /// SID order), so identities interned beyond the policy's own names —
  /// fleet workload labels, say — survive the round trip with their SIDs
  /// intact.
  [[nodiscard]] static std::vector<std::byte> write(
      const CompiledPolicyImage& image);

  /// write() to a file. Throws PolicyBlobError when the file cannot be
  /// created or fully written.
  static void write_file(const CompiledPolicyImage& image,
                         const std::string& path);
};

/// Validates and loads a blob back into a sealed CompiledPolicyImage.
class PolicyBlobReader {
 public:
  /// Header-only inspection; throws PolicyBlobError on a blob whose
  /// fixed header fails validation (see PolicyBlobInfo).
  [[nodiscard]] static PolicyBlobInfo probe(std::span<const std::byte> blob);

  /// Full validated load. When `sids` is null a fresh SidTable is
  /// created and populated in SID order (the boot path: the blob IS the
  /// vehicle's SID space). When a table is provided, every carried name
  /// must intern to exactly its carried SID — an empty table, or one
  /// whose interning history is a prefix of the blob's, qualifies;
  /// anything else is a SID-space mismatch and is rejected (packed
  /// entries would silently mean different identities otherwise).
  /// Throws PolicyBlobError on any validation failure; on success the
  /// returned image is sealed and decision-for-decision identical to the
  /// image the blob was written from (fingerprint cross-checked).
  [[nodiscard]] static CompiledPolicyImage load(
      std::span<const std::byte> blob,
      std::shared_ptr<mac::SidTable> sids = nullptr);

  /// load() from a file. Throws PolicyBlobError when the file cannot be
  /// read.
  [[nodiscard]] static CompiledPolicyImage load_file(
      const std::string& path, std::shared_ptr<mac::SidTable> sids = nullptr);
};

}  // namespace psme::core
