#include "core/policy_buffer.h"

#include <fstream>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define PSME_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define PSME_HAVE_MMAP 0
#endif

namespace psme::core {

namespace {

/// Whole-file read() fallback. Shared by the non-mmap build and the
/// runtime fallback when mmap itself refuses (special filesystems).
[[nodiscard]] bool read_whole_file(const std::string& path,
                                   std::vector<std::byte>& out,
                                   std::string* error) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    if (error != nullptr) *error = "cannot open '" + path + "' for reading";
    return false;
  }
  const std::streamsize size = in.tellg();
  if (size < 0) {
    if (error != nullptr) *error = "cannot size '" + path + "'";
    return false;
  }
  in.seekg(0);
  out.resize(static_cast<std::size_t>(size));
  if (!out.empty()) {
    in.read(reinterpret_cast<char*>(out.data()), size);
    if (!in) {
      if (error != nullptr) *error = "short read from '" + path + "'";
      return false;
    }
  }
  return true;
}

}  // namespace

PolicyBuffer::~PolicyBuffer() {
#if PSME_HAVE_MMAP
  if (map_ != nullptr) ::munmap(map_, size_);
#endif
}

std::shared_ptr<const PolicyBuffer> PolicyBuffer::take(
    std::vector<std::byte> bytes) {
  auto buffer = std::shared_ptr<PolicyBuffer>(new PolicyBuffer());
  buffer->owned_ = std::move(bytes);
  return buffer;
}

std::shared_ptr<const PolicyBuffer> PolicyBuffer::copy_of(
    std::span<const std::byte> bytes) {
  return take(std::vector<std::byte>(bytes.begin(), bytes.end()));
}

std::shared_ptr<const PolicyBuffer> PolicyBuffer::map_file(
    const std::string& path, std::string* error) {
#if PSME_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    struct stat st{};
    if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
      const auto size = static_cast<std::size_t>(st.st_size);
      void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (map != MAP_FAILED) {
        auto buffer = std::shared_ptr<PolicyBuffer>(new PolicyBuffer());
        buffer->map_ = map;
        buffer->size_ = size;
        return buffer;
      }
      // mmap refused (unusual filesystem) — fall through to read().
    } else {
      ::close(fd);
    }
  }
#endif
  auto buffer = std::shared_ptr<PolicyBuffer>(new PolicyBuffer());
  if (!read_whole_file(path, buffer->owned_, error)) return nullptr;
  return buffer;
}

}  // namespace psme::core
