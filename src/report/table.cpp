#include "report/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace psme::report {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("TextTable: at least one column required");
  }
}

TextTable::TextTable(std::initializer_list<std::string> headers)
    : TextTable(std::vector<std::string>(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::length_error("TextTable::add_row: more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::format_double(double v) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(2) << v;
  return out.str();
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c];
    }
    out << " |\n";
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string TextTable::render_markdown() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    out << "|";
    for (const auto& cell : cells) out << ' ' << cell << " |";
    out << '\n';
  };
  emit(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) out << "---|";
  out << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& s) -> std::string {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char ch : s) {
      if (ch == '"') q += '"';
      q += ch;
    }
    q += '"';
    return q;
  };
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) out << ',';
      out << quote(cells[c]);
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

}  // namespace psme::report
