// psme::report — text table rendering for benches and documents.
//
// Benches regenerate the paper's tables; this renderer produces aligned
// ASCII, GitHub markdown, and CSV from the same row data.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <type_traits>
#include <vector>

namespace psme::report {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  TextTable(std::initializer_list<std::string> headers);

  /// Appends a row; it may have fewer cells than there are headers (the
  /// remainder render empty) but not more (throws std::length_error).
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats each argument with to_string-like semantics.
  template <typename... Ts>
  void add(const Ts&... cells) {
    add_row(std::vector<std::string>{to_cell(cells)...});
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }

  /// Aligned ASCII with a header separator line.
  [[nodiscard]] std::string render() const;

  /// GitHub-flavoured markdown.
  [[nodiscard]] std::string render_markdown() const;

  /// RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  [[nodiscard]] std::string render_csv() const;

 private:
  static std::string to_cell(const std::string& s) { return s; }
  static std::string to_cell(const char* s) { return s; }
  static std::string to_cell(char c) { return std::string(1, c); }
  static std::string to_cell(bool b) { return b ? "yes" : "no"; }
  template <typename T>
  static std::string to_cell(const T& v) {
    if constexpr (std::is_arithmetic_v<T>) {
      if constexpr (std::is_floating_point_v<T>) {
        return format_double(static_cast<double>(v));
      } else {
        return std::to_string(v);
      }
    } else {
      return std::string(v);
    }
  }
  static std::string format_double(double v);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace psme::report
