// psme::car — the connected car's operating modes (paper Sec. V, Table I).
//
//  1) Normal:            standard vehicle functionality (driving, parked);
//  2) Remote Diagnostic:  maintenance by manufacturer or authorised engineer;
//  3) Fail-safe:          reserved for emergency situations.
#pragma once

#include <cstdint>
#include <string_view>

#include "threat/asset.h"

namespace psme::car {

enum class CarMode : std::uint8_t {
  kNormal = 0,
  kRemoteDiagnostic = 1,
  kFailSafe = 2,
};

inline constexpr CarMode kAllModes[] = {CarMode::kNormal,
                                        CarMode::kRemoteDiagnostic,
                                        CarMode::kFailSafe};

[[nodiscard]] std::string_view to_string(CarMode mode) noexcept;

/// Threat-model mode id for a car mode ("normal", "remote-diagnostic",
/// "fail-safe").
[[nodiscard]] threat::ModeId mode_id(CarMode mode);

/// Inverse of mode_id(); throws std::invalid_argument on unknown ids.
[[nodiscard]] CarMode mode_from_id(const threat::ModeId& id);

}  // namespace psme::car
