// psme::car — graceful degradation: the quarantine response layer.
//
// Detection without response is a dashboard. QuarantineController closes
// the loop the paper leaves open between "identify anomalous behaviour"
// (monitor::FrameRateMonitor) and the enforcement fabric: it consumes the
// monitor's alert stream and REACTS, so a compromised or rogue node
// degrades the vehicle instead of owning it. Escalation ladder, least
// drastic first:
//
//  1. isolate  — the bus's physical-layer TX attribution
//                (can::Bus::tx_attribution) names which PORT transmits an
//                offending id. When one port dominates the traffic, that
//                port is disconnected (the classic bus-guardian cut).
//                Dominance matters: an attacker spoofing a legitimate id
//                shares the id with its real owner, and cutting the owner
//                would do the attacker's job for it.
//  2. block    — no single transmitter dominates (or the port is
//                protected): install an expiring id-level quarantine
//                block on every registered controller
//                (can::Controller::quarantine_id). Ids on the allowlist —
//                everything Table I legitimises — are NEVER blocked; for
//                those the controller records the skip and relies on
//                isolation or escalation instead.
//  3. escalate — alerts keep arriving despite responses: force the
//                fail-safe ("limp home") mode transition through the
//                escalation hook, surfacing the event to telemetry.
//
// Everything is driven by a periodic poll on the simulation scheduler and
// is deterministic; every action lands in an event log for forensics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "can/bus.h"
#include "can/controller.h"
#include "monitor/anomaly.h"
#include "sim/event_queue.h"

namespace psme::car {

class Vehicle;

enum class QuarantineAction : std::uint8_t {
  kIdBlocked,      // expiring controller-level block installed
  kIdReleased,     // block expired and was removed
  kPortIsolated,   // dominant transmitter port disconnected
  kAllowlistSkip,  // offending id is Table-I-allowed; block refused
  kEscalated,      // fail-safe transition forced
};

[[nodiscard]] std::string_view to_string(QuarantineAction action) noexcept;

struct QuarantineEvent {
  sim::SimTime at{};
  QuarantineAction action = QuarantineAction::kIdBlocked;
  can::CanId id;          // offending id (default for kEscalated)
  std::string detail;     // port name, alert count, ...
};

struct QuarantineOptions {
  /// Alert-stream poll cadence.
  sim::SimDuration poll_period = std::chrono::milliseconds{50};
  /// Alerts on one id before the controller reacts to it.
  std::uint32_t react_after_alerts = 2;
  /// Port isolation requires at least this many attributed transmissions
  /// of the offending id from the candidate port since the last poll era…
  std::uint64_t isolate_min_tx = 8;
  /// …and the candidate must out-transmit the runner-up port by this
  /// factor (spoof-vs-owner disambiguation).
  double isolate_dominance = 4.0;
  /// Lifetime of an id block; expiry restores normal reception.
  sim::SimDuration block_duration = std::chrono::milliseconds{400};
  /// Total consumed alerts that force the fail-safe escalation (0 = never).
  std::uint32_t escalate_after_alerts = 0;
};

struct QuarantineStats {
  std::uint64_t alerts_consumed = 0;
  std::uint64_t ids_blocked = 0;
  std::uint64_t blocks_expired = 0;
  std::uint64_t ports_isolated = 0;
  std::uint64_t allowlist_skips = 0;
  std::uint64_t escalations = 0;
};

class QuarantineController {
 public:
  /// Escalation hook; typically wired to force the fail-safe car mode.
  using EscalationHook = std::function<void()>;

  QuarantineController(sim::Scheduler& sched, can::Bus& bus,
                       const monitor::FrameRateMonitor& monitor,
                       QuarantineOptions options = {});

  QuarantineController(const QuarantineController&) = delete;
  QuarantineController& operator=(const QuarantineController&) = delete;

  // -- wiring (before start) --------------------------------------------

  /// Registers a controller to receive id blocks.
  void protect(can::Controller& controller);
  /// Adds a standard id to the never-block allowlist.
  void allow_id(std::uint32_t standard_id);
  /// Marks a port as never-isolate (e.g. the gateway).
  void protect_port(std::size_t port_index);
  void set_escalation(EscalationHook hook) { escalate_ = std::move(hook); }

  /// Starts the poll loop.
  void start();

  // -- observation --------------------------------------------------------
  [[nodiscard]] const QuarantineStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<QuarantineEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::vector<can::CanId> blocked_ids() const;
  [[nodiscard]] const std::vector<std::size_t>& isolated_ports() const noexcept {
    return isolated_;
  }
  [[nodiscard]] bool is_allowed(std::uint32_t standard_id) const noexcept {
    return allowlist_.count(standard_id) != 0;
  }

 private:
  void poll();
  void react(can::CanId id);
  /// Attempts port isolation; true when a port was cut.
  bool try_isolate(can::CanId id);
  void install_block(can::CanId id);
  void release_block(can::CanId id);

  sim::Scheduler& sched_;
  can::Bus& bus_;
  const monitor::FrameRateMonitor& monitor_;
  QuarantineOptions options_;

  std::vector<can::Controller*> controllers_;
  std::set<std::uint32_t> allowlist_;
  std::set<std::size_t> protected_ports_;
  EscalationHook escalate_;

  std::size_t alerts_seen_ = 0;                  // monitor stream cursor
  std::map<std::uint64_t, std::uint32_t> alert_counts_;  // per id key
  std::map<std::uint64_t, std::vector<std::uint64_t>> tx_snapshot_;
  std::set<std::uint64_t> handled_;   // ids already blocked/isolated
  std::vector<std::size_t> isolated_;
  bool escalated_ = false;

  QuarantineStats stats_;
  std::vector<QuarantineEvent> events_;
  std::unique_ptr<sim::PeriodicTask> poller_;
};

/// Vehicle wiring helper: registers every component controller (gateway
/// included), allowlists every id Table I legitimises — all asset command
/// and status ids plus the structural frames (mode change, fail-safe
/// trigger, emergency call, diagnostics, sensors, firmware, tracking) —
/// protects the gateway's port from isolation, and wires escalation to
/// the fail-safe mode transition. The returned controller still needs
/// start().
[[nodiscard]] std::unique_ptr<QuarantineController> make_vehicle_quarantine(
    Vehicle& vehicle, const monitor::FrameRateMonitor& monitor,
    QuarantineOptions options = {});

}  // namespace psme::car
