// psme::car — the CAN message-ID map and its binding to threat-model
// entities.
//
// The policy rules derived from Table I speak about *entry points* and
// *assets*; the bus speaks in message IDs. This header fixes the mapping:
// each asset has command IDs (frames that WRITE to/control the asset) and
// status IDs (frames that READ from/report the asset), and each vehicle
// node represents one threat-model entry point and owns some assets.
// psme::car::policy_binding uses these tables to translate a PolicySet
// into per-node approved read/write lists (for the HPE) or acceptance
// filters (software).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace psme::car {

// --- message identifiers (standard 11-bit; lower id = higher priority) ---
namespace msg {
inline constexpr std::uint32_t kModeChange = 0x020;       // byte0 = CarMode
inline constexpr std::uint32_t kFailSafeTrigger = 0x050;  // byte0: 1=enter
inline constexpr std::uint32_t kEmergencyCall = 0x060;    // to connectivity
inline constexpr std::uint32_t kEcuCommand = 0x100;       // see op::*
inline constexpr std::uint32_t kEcuStatus = 0x101;
inline constexpr std::uint32_t kEpsCommand = 0x110;
inline constexpr std::uint32_t kEpsStatus = 0x111;
inline constexpr std::uint32_t kEngineCommand = 0x120;
inline constexpr std::uint32_t kEngineStatus = 0x121;
inline constexpr std::uint32_t kLockCommand = 0x130;
inline constexpr std::uint32_t kLockStatus = 0x131;
inline constexpr std::uint32_t kAlarmCommand = 0x140;
inline constexpr std::uint32_t kAlarmStatus = 0x141;
inline constexpr std::uint32_t kModemCommand = 0x150;
inline constexpr std::uint32_t kModemStatus = 0x151;
inline constexpr std::uint32_t kIviCommand = 0x160;
inline constexpr std::uint32_t kIviStatus = 0x161;
inline constexpr std::uint32_t kSensorAccel = 0x200;
inline constexpr std::uint32_t kSensorBrake = 0x201;
inline constexpr std::uint32_t kSensorSpeed = 0x202;
inline constexpr std::uint32_t kSensorProximity = 0x203;
inline constexpr std::uint32_t kAirbagEvent = 0x210;
inline constexpr std::uint32_t kTrackingReport = 0x300;
inline constexpr std::uint32_t kFirmwareUpdate = 0x400;
inline constexpr std::uint32_t kDiagRequest = 0x500;
inline constexpr std::uint32_t kDiagResponse = 0x501;
}  // namespace msg

// --- command opcodes (payload byte 0 of command frames) ---
namespace op {
inline constexpr std::uint8_t kDisable = 0x01;
inline constexpr std::uint8_t kEnable = 0x02;
inline constexpr std::uint8_t kSetValue = 0x03;
inline constexpr std::uint8_t kLock = 0x01;    // kLockCommand
inline constexpr std::uint8_t kUnlock = 0x02;  // kLockCommand
inline constexpr std::uint8_t kArm = 0x01;     // kAlarmCommand
inline constexpr std::uint8_t kDisarm = 0x02;  // kAlarmCommand
inline constexpr std::uint8_t kInstall = 0x01; // kIviCommand
inline constexpr std::uint8_t kDisplay = 0x02; // kIviCommand
}  // namespace op

// --- threat-model entity identifiers ---
namespace asset {
inline const std::string kEvEcu = "ev-ecu";
inline const std::string kEps = "eps";
inline const std::string kEngine = "engine";
inline const std::string kConnectivity = "connectivity";
inline const std::string kInfotainment = "infotainment";
inline const std::string kDoorLocks = "door-locks";
inline const std::string kSafetyCritical = "safety-critical";
inline const std::string kSensors = "sensors";
}  // namespace asset

namespace entry {
inline const std::string kDoorLocks = "ep.door-locks";
inline const std::string kSafetyCritical = "ep.safety-critical";
inline const std::string kSensors = "ep.sensors";
inline const std::string kConnectivity = "ep.connectivity";
inline const std::string kInfotainment = "ep.infotainment";
inline const std::string kMediaBrowser = "ep.media-browser";
inline const std::string kEmergency = "ep.emergency";
inline const std::string kAirbags = "ep.airbags";
inline const std::string kEvEcu = "ep.ev-ecu";
inline const std::string kEps = "ep.eps";
inline const std::string kEngine = "ep.engine";
inline const std::string kManualOpen = "ep.manual-open";
/// Sentinel: compiles to the wildcard subject "*" (Table I row "Any node").
inline const std::string kAnyNode = "any";
}  // namespace entry

/// Binding of one asset to its bus identifiers and owning node.
struct AssetBinding {
  std::string asset_id;
  std::string owner_node;                 // vehicle node hosting the asset
  std::vector<std::uint32_t> command_ids; // writing the asset
  std::vector<std::uint32_t> status_ids;  // reading the asset
};

/// Binding of one vehicle node to the threat-model entry points it hosts
/// (a physical node can expose several logical entry points: the safety
/// node hosts the safety-critical, emergency and airbag interfaces).
struct NodeBinding {
  std::string node;                       // e.g. "ecu"
  std::vector<std::string> entry_points;  // e.g. {entry::kEvEcu}
};

/// All asset bindings for the connected-car case study.
[[nodiscard]] const std::vector<AssetBinding>& asset_bindings();

/// All node bindings for the connected-car case study.
[[nodiscard]] const std::vector<NodeBinding>& node_bindings();

/// Looks up the binding for one asset id; nullptr when unknown.
[[nodiscard]] const AssetBinding* find_asset_binding(const std::string& asset_id);

/// Entry points hosted by a node; empty when the node is unknown.
[[nodiscard]] std::vector<std::string> entry_points_of(const std::string& node);

/// Diagnostic address of a node (targets of kDiagRequest frames);
/// 0 when the node is unknown.
[[nodiscard]] std::uint8_t diag_address_of(const std::string& node);

}  // namespace psme::car
