#include "car/fleet_boot.h"

#include <utility>

namespace psme::car {

// The wire layer only distinguishes the three recovery classes;
// rollback refusal never throws (it is a clean `false` from
// commit_update), so it has no WireFault mapping.
UpdateResult to_update_result(core::WireFault fault) noexcept {
  switch (fault) {
    case core::WireFault::kAnchorMismatch:
      return UpdateResult::kAnchorMismatch;
    case core::WireFault::kFingerprintMismatch:
      return UpdateResult::kFingerprintMismatch;
    case core::WireFault::kMalformed:
      break;
  }
  return UpdateResult::kValidationFailed;
}

std::string_view to_string(UpdateResult result) noexcept {
  switch (result) {
    case UpdateResult::kOk:
      return "ok";
    case UpdateResult::kRollbackRefused:
      return "rollback-refused";
    case UpdateResult::kValidationFailed:
      return "validation-failed";
    case UpdateResult::kFingerprintMismatch:
      return "fingerprint-mismatch";
    case UpdateResult::kAnchorMismatch:
      return "anchor-mismatch";
  }
  return "unknown";
}

FleetBoot::FleetBoot(std::span<const std::byte> blob,
                     std::vector<FleetCheck> checks,
                     FleetEvaluatorOptions options) {
  boot(core::PolicyBlobReader::load(blob), std::move(checks), options);
}

FleetBoot::FleetBoot(const std::string& blob_path,
                     std::vector<FleetCheck> checks,
                     FleetEvaluatorOptions options, core::BlobTrust trust) {
  boot(core::PolicyBlobReader::load_file(blob_path, nullptr, trust),
       std::move(checks), options);
}

void FleetBoot::boot(core::CompiledPolicyImage image,
                     std::vector<FleetCheck> checks,
                     FleetEvaluatorOptions options) {
  image_ = std::make_unique<core::CompiledPolicyImage>(std::move(image));
  checks_ = std::move(checks);
  options_ = options;
  fleet_ = std::make_unique<FleetEvaluator>(*image_, checks_, options_);
}

bool FleetBoot::apply_update(std::span<const std::byte> blob) {
  // Validate BEFORE touching live state: a malformed blob throws here and
  // the running policy keeps answering. The update loads into a fresh SID
  // space — the blob is self-contained, so the old and new interners need
  // not agree (the evaluator re-resolves its workload below).
  return commit_update(std::make_unique<core::CompiledPolicyImage>(
      core::PolicyBlobReader::load(blob)));
}

bool FleetBoot::apply_delta_update(std::span<const std::byte> delta) {
  // The delta channel validates against the RUNNING image: the anchor
  // fingerprint must match *image_ or apply() throws PolicyDeltaError
  // and the running policy keeps answering. Like the blob path, the
  // applied image owns a fresh SID space (base prefix + carried
  // extension) and the evaluator re-resolves its workload below.
  return commit_update(std::make_unique<core::CompiledPolicyImage>(
      core::PolicyDeltaReader::apply(*image_, delta)));
}

UpdateResult FleetBoot::try_apply_update(std::span<const std::byte> blob) {
  try {
    return apply_update(blob) ? UpdateResult::kOk
                              : UpdateResult::kRollbackRefused;
  } catch (const core::PolicyBlobError& error) {
    return to_update_result(error.fault());
  }
}

UpdateResult FleetBoot::try_apply_delta_update(
    std::span<const std::byte> delta) {
  try {
    return apply_delta_update(delta) ? UpdateResult::kOk
                                     : UpdateResult::kRollbackRefused;
  } catch (const core::PolicyDeltaError& error) {
    return to_update_result(error.fault());
  }
}

bool FleetBoot::commit_update(
    std::unique_ptr<core::CompiledPolicyImage> updated_image) {
  if (updated_image->version() <= image_->version()) {
    return false;  // rollback refused; a replayed old update changes nothing
  }

  // Build the COMPLETE replacement — evaluator re-interning the workload
  // into the new SID space, per-vehicle modes carried over — before
  // releasing anything: a throw anywhere in here (strong guarantee)
  // leaves the incumbent image and evaluator untouched and answering.
  auto updated_fleet =
      std::make_unique<FleetEvaluator>(*updated_image, checks_, options_);
  for (std::size_t v = 0; v < fleet_->fleet_size(); ++v) {
    updated_fleet->set_mode(v, fleet_->mode(v));
  }

  // The commit: pointer swaps only, nothing can throw. Dropping the old
  // evaluator discards every pre-resolved request and cached decision
  // buffer — the fleet-layer equivalent of the AVC flush a MacEngine
  // policy reload performs.
  fleet_ = std::move(updated_fleet);
  image_ = std::move(updated_image);
  return true;
}

}  // namespace psme::car
