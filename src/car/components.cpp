#include "car/components.h"

#include <array>

namespace psme::car {

using namespace std::chrono_literals;

can::Frame command_frame(std::uint32_t id, std::uint8_t opcode,
                         std::uint8_t arg) {
  const std::array<std::uint8_t, 2> payload{opcode, arg};
  return can::Frame(can::CanId::standard(id),
                    std::span<const std::uint8_t>(payload));
}

CarNode::CarNode(sim::Scheduler& sched, can::Channel& channel,
                 std::string name, sim::Trace* trace, std::uint64_t seed)
    : can::Node(sched, channel, std::move(name), trace, seed) {}

void CarNode::enable_diagnostics(std::uint8_t address) {
  responder_.emplace(
      address,
      [this](std::uint8_t did) { return diag_read(did); },
      [this](std::uint8_t did, std::uint8_t value) {
        return diag_write(did, value);
      },
      [this] { diag_reset(); });
}

void CarNode::handle_frame(const can::Frame& frame, sim::SimTime at) {
  if (!frame.id().is_extended() && frame.id().raw() == msg::kModeChange &&
      frame.dlc() >= 1) {
    const auto new_mode = static_cast<CarMode>(frame.byte0());
    if (new_mode != mode_) {
      mode_ = new_mode;
      // Leaving the workshop drops any security-access unlock.
      if (responder_.has_value() && mode_ != CarMode::kRemoteDiagnostic) {
        responder_->relock();
      }
      on_mode_change(mode_);
    }
    return;
  }
  if (responder_.has_value() && mode_ == CarMode::kRemoteDiagnostic &&
      !frame.id().is_extended() && frame.id().raw() == msg::kDiagRequest) {
    if (auto response = responder_->handle(frame, rng())) {
      send(*response);
    }
    return;
  }
  on_message(frame, at);
}

ActuatorNode::ActuatorNode(sim::Scheduler& sched, can::Channel& channel,
                           std::string name, std::uint32_t command_id,
                           std::uint32_t status_id,
                           sim::SimDuration status_period,
                           sim::SimTime first_status, sim::Trace* trace,
                           std::uint64_t seed)
    : CarNode(sched, channel, std::move(name), trace, seed),
      command_id_(command_id),
      status_id_(status_id) {
  status_task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), first_status, status_period, [this] { broadcast_status(); },
      this->name() + ".status");
}

void ActuatorNode::on_message(const can::Frame& frame, sim::SimTime at) {
  if (frame.id().is_extended() || frame.id().raw() != command_id_) {
    on_other_message(frame, at);
    return;
  }
  switch (frame.byte0()) {
    case op::kDisable:
      if (active_) {
        active_ = false;
        ++disable_events_;
        trace(sim::TraceLevel::kSecurity, "actuator disabled by command");
      }
      break;
    case op::kEnable:
      active_ = true;
      break;
    case op::kSetValue:
      if (frame.dlc() >= 2) setpoint_ = frame.data()[1];
      break;
    default:
      break;
  }
}

void ActuatorNode::broadcast_status() {
  send(command_frame(status_id_, active_ ? 1 : 0, setpoint_));
}

std::optional<std::uint8_t> ActuatorNode::diag_read(std::uint8_t did) {
  switch (did) {
    case diag::kDidActive: return active_ ? 1 : 0;
    case diag::kDidSetpoint: return setpoint_;
    default: return std::nullopt;
  }
}

bool ActuatorNode::diag_write(std::uint8_t did, std::uint8_t value) {
  if (did != diag::kDidSetpoint) return false;
  setpoint_ = value;
  return true;
}

void ActuatorNode::diag_reset() { active_ = true; }

EvEcuNode::EvEcuNode(sim::Scheduler& sched, can::Channel& channel,
                     sim::Trace* trace, std::uint64_t seed)
    : ActuatorNode(sched, channel, "ecu", msg::kEcuCommand, msg::kEcuStatus,
                   100ms, sim::SimTime{1ms}, trace, seed) {
  // Torque demand loop toward the engine (legitimate base-policy write).
  torque_task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), sim::SimTime{5ms}, 50ms,
      [this] {
        if (active_ && mode() == CarMode::kNormal) {
          send(command_frame(msg::kEngineCommand, op::kSetValue, speed_));
        }
      },
      "ecu.torque");
}

void EvEcuNode::on_other_message(const can::Frame& frame, sim::SimTime /*at*/) {
  if (!frame.id().is_extended() && frame.id().raw() == msg::kSensorSpeed &&
      frame.dlc() >= 1) {
    speed_ = frame.byte0();
  }
}

void EvEcuNode::broadcast_status() {
  send(command_frame(msg::kEcuStatus, active_ ? 1 : 0, speed_));
}

EpsNode::EpsNode(sim::Scheduler& sched, can::Channel& channel,
                 sim::Trace* trace, std::uint64_t seed)
    : ActuatorNode(sched, channel, "eps", msg::kEpsCommand, msg::kEpsStatus,
                   100ms, sim::SimTime{2ms}, trace, seed) {}

EngineNode::EngineNode(sim::Scheduler& sched, can::Channel& channel,
                       sim::Trace* trace, std::uint64_t seed)
    : ActuatorNode(sched, channel, "engine", msg::kEngineCommand,
                   msg::kEngineStatus, 100ms, sim::SimTime{3ms}, trace, seed) {}

void EngineNode::on_message(const can::Frame& frame, sim::SimTime at) {
  if (!frame.id().is_extended() && frame.id().raw() == command_id_ &&
      frame.byte0() == op::kSetValue) {
    ++torque_commands_;
  }
  ActuatorNode::on_message(frame, at);
}

SensorNode::SensorNode(sim::Scheduler& sched, can::Channel& channel,
                       sim::Trace* trace, std::uint64_t seed)
    : CarNode(sched, channel, "sensors", trace, seed) {
  task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), sim::SimTime{4ms}, 20ms, [this] { broadcast(); },
      "sensors.broadcast");
}

void SensorNode::on_message(const can::Frame&, sim::SimTime) {}

void SensorNode::broadcast() {
  // Gentle noise around plausible driving values; deterministic per seed.
  const auto accel = static_cast<std::uint8_t>(10 + rng().uniform(0, 20));
  const auto brake = static_cast<std::uint8_t>(rng().uniform(0, 5));
  send(command_frame(msg::kSensorAccel, accel));
  send(command_frame(msg::kSensorBrake, brake));
  send(command_frame(msg::kSensorSpeed, speed_));
  if (rng().chance(0.1)) {
    send(command_frame(msg::kSensorProximity,
                       static_cast<std::uint8_t>(rng().uniform(50, 255))));
  }
}

DoorLockNode::DoorLockNode(sim::Scheduler& sched, can::Channel& channel,
                           sim::Trace* trace, std::uint64_t seed)
    : CarNode(sched, channel, "doors", trace, seed) {
  task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), sim::SimTime{6ms}, 200ms, [this] { broadcast_status(); },
      "doors.status");
}

void DoorLockNode::on_message(const can::Frame& frame, sim::SimTime /*at*/) {
  if (frame.id().is_extended()) return;
  switch (frame.id().raw()) {
    case msg::kLockCommand:
      if (frame.byte0() == op::kLock) {
        if (mode() == CarMode::kFailSafe) {
          // Hazard T14: locking during an accident traps occupants.
          ++locks_during_failsafe_;
          trace(sim::TraceLevel::kSecurity,
                "HAZARD: lock command during fail-safe");
        }
        if (!locked_) {
          locked_ = true;
          // Arm the alarm when locking (base-policy write B08).
          send(command_frame(msg::kAlarmCommand, op::kArm));
        }
      } else if (frame.byte0() == op::kUnlock) {
        if (speed_ > 5 && mode() == CarMode::kNormal) {
          // Hazard T13: unlock while the vehicle is in motion.
          ++unlocks_while_moving_;
          trace(sim::TraceLevel::kSecurity, "HAZARD: unlock while in motion");
        }
        locked_ = false;
      }
      break;
    case msg::kSensorSpeed:
      speed_ = frame.byte0();
      break;
    case msg::kFailSafeTrigger:
      // Crash response: release doors for rescue.
      locked_ = false;
      break;
    default:
      break;
  }
}

void DoorLockNode::broadcast_status() {
  send(command_frame(msg::kLockStatus, locked_ ? 1 : 0));
}

SafetyCriticalNode::SafetyCriticalNode(sim::Scheduler& sched,
                                       can::Channel& channel,
                                       sim::Trace* trace, std::uint64_t seed)
    : CarNode(sched, channel, "safety", trace, seed) {
  task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), sim::SimTime{7ms}, 200ms, [this] { broadcast_status(); },
      "safety.status");
}

void SafetyCriticalNode::on_message(const can::Frame& frame,
                                    sim::SimTime /*at*/) {
  if (frame.id().is_extended()) return;
  switch (frame.id().raw()) {
    case msg::kAlarmCommand:
      if (frame.byte0() == op::kArm) {
        armed_ = true;
      } else if (frame.byte0() == op::kDisarm) {
        if (armed_) {
          // Hazard T16: alarm disabled (theft enablement).
          ++disarm_events_;
          trace(sim::TraceLevel::kSecurity, "HAZARD: alarm disarmed");
        }
        armed_ = false;
      }
      break;
    case msg::kSensorAccel:
      if (frame.byte0() >= kCrashThreshold) trigger_failsafe();
      break;
    case msg::kAirbagEvent:
      trigger_failsafe();
      break;
    default:
      break;
  }
}

void SafetyCriticalNode::trigger_failsafe() {
  ++failsafe_triggers_;
  trace(sim::TraceLevel::kSecurity, "fail-safe triggered");
  send(command_frame(msg::kFailSafeTrigger, 1));
  send(command_frame(msg::kEmergencyCall, 1));
}

void SafetyCriticalNode::broadcast_status() {
  send(command_frame(msg::kAlarmStatus, armed_ ? 1 : 0));
}

ConnectivityNode::ConnectivityNode(sim::Scheduler& sched,
                                   can::Channel& channel, sim::Trace* trace,
                                   std::uint64_t seed)
    : CarNode(sched, channel, "connectivity", trace, seed) {
  task_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), sim::SimTime{8ms}, 500ms, [this] { report_tracking(); },
      "connectivity.tracking");
}

void ConnectivityNode::on_message(const can::Frame& frame, sim::SimTime /*at*/) {
  if (frame.id().is_extended()) return;
  switch (frame.id().raw()) {
    case msg::kModemCommand:
      if (frame.byte0() == op::kDisable) {
        if (modem_enabled_) {
          // Hazard T09/T10: fail-safe communications disabled.
          ++modem_disables_;
          trace(sim::TraceLevel::kSecurity, "HAZARD: modem disabled");
        }
        modem_enabled_ = false;
      } else if (frame.byte0() == op::kEnable) {
        modem_enabled_ = true;
      }
      break;
    case msg::kEmergencyCall:
      if (modem_enabled_) {
        ++ecalls_made_;
      } else {
        ++ecalls_failed_;
        trace(sim::TraceLevel::kError, "emergency call FAILED: modem down");
      }
      break;
    case msg::kFirmwareUpdate:
      if (mode() == CarMode::kRemoteDiagnostic) {
        // Legitimate provisioning path.
      } else {
        // Hazard T08: radio firmware modified outside diagnostics.
        firmware_ok_ = false;
        ++firmware_tampers_;
        trace(sim::TraceLevel::kSecurity, "HAZARD: firmware tampered");
      }
      break;
    default:
      break;
  }
}

void ConnectivityNode::report_tracking() {
  if (!modem_enabled_) return;
  ++tracking_reports_;
  send(command_frame(msg::kTrackingReport, 1));
}

InfotainmentNode::InfotainmentNode(sim::Scheduler& sched,
                                   can::Channel& channel, sim::Trace* trace,
                                   std::uint64_t seed)
    : CarNode(sched, channel, "infotainment", trace, seed) {}

void InfotainmentNode::on_message(const can::Frame& frame, sim::SimTime /*at*/) {
  if (frame.id().is_extended()) return;
  switch (frame.id().raw()) {
    case msg::kSensorSpeed:
      displayed_speed_ = frame.byte0();
      break;
    case msg::kIviCommand:
      if (frame.byte0() == op::kInstall) {
        ++installs_;
        // 0xEE marks the exploit payload used by attack scenarios (T11).
        if (frame.dlc() >= 2 && frame.data()[1] == 0xEE) {
          compromised_ = true;
          trace(sim::TraceLevel::kSecurity, "HAZARD: head unit compromised");
        }
      } else if (frame.byte0() == op::kDisplay && frame.dlc() >= 2) {
        // Hazard T12: car status values forced onto the display.
        displayed_speed_ = frame.data()[1];
        ++display_overrides_;
        trace(sim::TraceLevel::kSecurity, "HAZARD: display value overridden");
      }
      break;
    default:
      break;
  }
}

GatewayNode::GatewayNode(sim::Scheduler& sched, can::Channel& channel,
                         sim::Trace* trace, std::uint64_t seed)
    : CarNode(sched, channel, "gateway", trace, seed) {}

void GatewayNode::change_mode(CarMode new_mode) {
  if (new_mode == current_) return;
  current_ = new_mode;
  trace(sim::TraceLevel::kInfo,
        "mode change -> " + std::string(to_string(new_mode)));
  send(command_frame(msg::kModeChange, static_cast<std::uint8_t>(new_mode)));
  if (on_change_) on_change_(new_mode);
}

void GatewayNode::on_message(const can::Frame& frame, sim::SimTime /*at*/) {
  if (!frame.id().is_extended() && frame.id().raw() == msg::kFailSafeTrigger &&
      frame.byte0() == 1) {
    change_mode(CarMode::kFailSafe);
  }
}

}  // namespace psme::car
