// psme::car — batched policy evaluation for whole fleets.
//
// The paper's scalability argument (software MAC is affordable because
// the cache answers the hot path) only holds fleet-wide if millions of
// simulated vehicles share one compiled SID-space image instead of each
// re-hashing strings per request. FleetEvaluator is that boundary: it
// resolves every vehicle's entity labels to SIDs exactly once at
// construction, keeps one mode byte per vehicle, and per simulation tick
// drives the image's batched evaluator over the whole fleet in
// fixed-size chunks whose request/decision buffers are reused — after
// the first tick, a fleet sweep performs no heap allocation.
//
// Fleet sweeps are embarrassingly parallel: a sealed image is immutable
// and its evaluation pure, so tick_parallel(n) shards the fleet into
// contiguous vehicle ranges and sweeps them on a worker pool — per-worker
// capacity-warm buffers, cache-line-padded per-worker tallies, and a
// deterministic merge that makes the decision stream byte-identical to
// the sequential tick() for ANY thread count (test-pinned).
//
// Evaluation paths, so benches can price the pipeline stages:
//   tick()          — batched SID path (the product);
//   tick_parallel() — the same sweep sharded across n worker threads;
//   tick_scalar()   — same pre-resolved requests, per-element evaluate;
//   tick_strings()  — the legacy shim: string requests built and hashed
//                     per element against a PolicySet.
// All paths produce byte-identical Decisions for the same fleet state.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "car/modes.h"
#include "core/policy.h"
#include "core/policy_image.h"

namespace psme::car {

/// One logical access question every vehicle asks per tick.
struct FleetCheck {
  std::string subject;  // entry-point id
  std::string object;   // asset id
  core::AccessType access = core::AccessType::kRead;
};

/// The standard per-vehicle workload: every (hosted entry point, asset,
/// access) question the binding layer asks when policing a vehicle —
/// the fleet-scale version of BindingCompiler's question space.
[[nodiscard]] std::vector<FleetCheck> default_fleet_checks();

struct FleetEvaluatorOptions {
  std::size_t fleet_size = 1;
  CarMode initial_mode = CarMode::kNormal;
  /// Decisions materialised per evaluate_batch call; bounds peak memory
  /// (the fleet never holds more than this many Decisions at once).
  /// Defaults to the chunk the engine's staged pipeline reserves its
  /// scratch for, so the default fleet never grows engine scratch.
  std::size_t batch_chunk = core::kRecommendedBatchChunk;
};

struct FleetTickStats {
  std::uint64_t decisions = 0;
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;
  /// Per-vehicle deny counts for this tick (index = vehicle), the
  /// fleet-scale telemetry feed: monitor::DenyStreakMonitor consumes it
  /// to flag per-vehicle deny streaks (compromised-vehicle candidates).
  /// Views evaluator-owned storage — valid until the evaluator's next
  /// tick or destruction. Populated by tick() and tick_parallel(); the
  /// comparison paths (tick_scalar, tick_strings) leave it empty.
  std::span<const std::uint32_t> vehicle_denied{};
};

class FleetEvaluator {
 public:
  /// Observes each flushed chunk: the requests answered and their
  /// decisions, in fleet order (vehicle-major, check-minor). Used by
  /// audit/parity consumers; the counting paths skip it.
  using ChunkSink = std::function<void(std::span<const core::SidRequest>,
                                       std::span<const core::Decision>)>;

  /// Resolves `checks` against the image's interner once. The image must
  /// outlive the evaluator. Throws std::invalid_argument on an empty
  /// fleet, an empty workload or a zero chunk size.
  FleetEvaluator(const core::CompiledPolicyImage& image,
                 std::vector<FleetCheck> checks,
                 FleetEvaluatorOptions options = {});

  /// Parks and joins the persistent worker pool, if one was ever started.
  ~FleetEvaluator();

  /// The worker pool's threads capture `this`; the evaluator is pinned.
  FleetEvaluator(const FleetEvaluator&) = delete;
  FleetEvaluator& operator=(const FleetEvaluator&) = delete;
  FleetEvaluator(FleetEvaluator&&) = delete;
  FleetEvaluator& operator=(FleetEvaluator&&) = delete;

  [[nodiscard]] std::size_t fleet_size() const noexcept {
    return vehicle_modes_.size();
  }
  [[nodiscard]] std::size_t checks_per_vehicle() const noexcept {
    return checks_.size();
  }
  [[nodiscard]] const core::CompiledPolicyImage& image() const noexcept {
    return image_;
  }

  /// Per-vehicle operational mode (mode changes are per vehicle: one
  /// car enters fail-safe, the rest keep driving).
  void set_mode(std::size_t vehicle, CarMode mode);
  [[nodiscard]] CarMode mode(std::size_t vehicle) const;

  /// One fleet sweep through the batched SID path. With a sink, each
  /// chunk is surfaced after evaluation (parity checking, auditing).
  /// Without one, the sweep runs the image's verdict-only batch variant
  /// (evaluate_batch_allowed) — the tallies and telemetry are identical,
  /// but no Decision strings are copied, which is the cheapest way
  /// through the staged pipeline.
  FleetTickStats tick(const ChunkSink& sink = {});

  /// One fleet sweep sharded across `n_threads` workers, each sweeping a
  /// contiguous vehicle range with its own capacity-warm buffers against
  /// the shared sealed image (safe: see CompiledPolicyImage's concurrency
  /// contract). Per-worker tallies are cache-line padded and merged
  /// deterministically in shard order, so for any thread count the
  /// returned stats — per-vehicle deny counts included — and the
  /// concatenated decision stream are byte-identical to tick()'s
  /// (chunk BOUNDARIES seen by a sink may differ; the concatenation never
  /// does). With a sink, workers record their shard's requests/decisions
  /// and the calling thread replays them in fleet order after the join.
  /// Thread counts above the fleet size are clamped; n_threads == 1 runs
  /// entirely on the calling thread. Throws std::invalid_argument on 0.
  ///
  /// Worker threads are PERSISTENT: the first sweep at a given thread
  /// count starts k-1 pool threads that then sleep on a condition
  /// variable between ticks — a steady-state sweep costs two lock
  /// hand-offs instead of k-1 thread spawns (~20 µs each), which is what
  /// opens sub-millisecond tick budgets for small fleets. The pool is
  /// torn down and restarted only when the effective thread count
  /// changes; the destructor parks and joins it.
  FleetTickStats tick_parallel(std::size_t n_threads,
                               const ChunkSink& sink = {});

  /// Same requests, per-element image evaluation — what batching saves.
  [[nodiscard]] FleetTickStats tick_scalar() const;

  /// The legacy string pipeline: builds an AccessRequest per element
  /// and lets `policy` hash names per request. Pass the set the image
  /// was compiled from for comparable (byte-identical) decisions.
  [[nodiscard]] FleetTickStats tick_strings(const core::PolicySet& policy) const;

 private:
  /// Per-worker state for tick_parallel, cache-line aligned so one
  /// worker's hot tallies and buffer headers never share a line with a
  /// neighbour's (no false sharing). Buffers are capacity-warm: reused
  /// across ticks while the thread count stays the same.
  struct alignas(64) Worker {
    std::vector<core::SidRequest> batch;
    /// Counting mode: one verdict byte per queued request
    /// (evaluate_batch_allowed) — no Decision is materialised.
    std::vector<std::uint8_t> flags;
    /// Sink mode only: the shard's full request/decision stream, replayed
    /// to the sink in fleet order by the calling thread after the join.
    std::vector<core::SidRequest> captured_requests;
    std::vector<core::Decision> captured_decisions;
    std::uint64_t allowed = 0;
    std::uint64_t denied = 0;
  };

  /// Appends vehicle `v`'s requests; flushes full chunks through the
  /// batched evaluator.
  void flush(FleetTickStats& stats, const ChunkSink& sink);

  /// Sweeps vehicles [begin, end) into `worker`'s buffers/tallies.
  /// Writes vehicle_denied_[begin, end) — disjoint across workers.
  void sweep_range(Worker& worker, std::size_t begin, std::size_t end,
                   bool capture);

  /// Condition-variable worker pool (defined in the .cpp): k-1 threads
  /// parked between ticks, woken per sweep by an epoch bump. All shared
  /// per-tick state (workers_, errors_, vehicle_denied_, vehicle modes)
  /// is written by the owner BEFORE the epoch bump and read by workers
  /// after they observe it under the pool mutex — the lock pair is the
  /// only synchronisation a sweep needs.
  struct Pool;

  /// Starts (or restarts, when the thread count changed) the pool with
  /// k-1 parked threads. No-op when the right-sized pool already runs.
  void ensure_pool(std::size_t k);
  /// Parks, joins and discards the pool. Safe when none exists.
  void stop_pool() noexcept;
  /// Body of pool thread `w` (workers_[w] is its slot).
  void worker_loop(std::size_t w);

  const core::CompiledPolicyImage& image_;
  std::vector<FleetCheck> checks_;             // string form (tick_strings)
  std::vector<core::SidRequest> resolved_;     // SID form, mode filled per tick
  std::array<mac::Sid, 3> mode_sids_{};        // CarMode -> image mode SID
  std::array<threat::ModeId, 3> mode_ids_;     // CarMode -> string mode id
  std::vector<std::uint8_t> vehicle_modes_;
  std::size_t batch_chunk_;
  /// Chunk buffers, reused across flushes and ticks (capacity-warm).
  /// Counting ticks fill flags_ (one verdict byte per request); only
  /// sink-observed ticks materialise decisions_.
  std::vector<core::SidRequest> batch_;
  std::vector<core::Decision> decisions_;
  std::vector<std::uint8_t> flags_;
  /// Per-vehicle deny counts of the most recent tick()/tick_parallel()
  /// (the storage FleetTickStats::vehicle_denied views); reused.
  std::vector<std::uint32_t> vehicle_denied_;
  /// Global decision offset of the chunk being flushed (tick() only);
  /// maps a chunk-local index back to its vehicle for deny attribution.
  std::size_t tick_offset_ = 0;
  /// Worker pool state, persistent across ticks (recreated only when the
  /// requested thread count changes).
  std::vector<Worker> workers_;
  /// Per-worker exception transport for the current sweep.
  std::vector<std::exception_ptr> errors_;
  /// The parked threads themselves (null until the first multi-threaded
  /// sweep; k-1 threads while alive).
  std::unique_ptr<Pool> pool_;
};

}  // namespace psme::car
