// psme::car — batched policy evaluation for whole fleets.
//
// The paper's scalability argument (software MAC is affordable because
// the cache answers the hot path) only holds fleet-wide if millions of
// simulated vehicles share one compiled SID-space image instead of each
// re-hashing strings per request. FleetEvaluator is that boundary: it
// resolves every vehicle's entity labels to SIDs exactly once at
// construction, keeps one mode byte per vehicle, and per simulation tick
// drives the image's batched evaluator over the whole fleet in
// fixed-size chunks whose request/decision buffers are reused — after
// the first tick, a fleet sweep performs no heap allocation.
//
// Three evaluation paths exist so benches can price the pipeline stages:
//   tick()         — batched SID path (the product);
//   tick_scalar()  — same pre-resolved requests, per-element evaluate;
//   tick_strings() — the legacy shim: string requests built and hashed
//                    per element against a PolicySet.
// All three produce byte-identical Decisions for the same fleet state.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "car/modes.h"
#include "core/policy.h"
#include "core/policy_image.h"

namespace psme::car {

/// One logical access question every vehicle asks per tick.
struct FleetCheck {
  std::string subject;  // entry-point id
  std::string object;   // asset id
  core::AccessType access = core::AccessType::kRead;
};

/// The standard per-vehicle workload: every (hosted entry point, asset,
/// access) question the binding layer asks when policing a vehicle —
/// the fleet-scale version of BindingCompiler's question space.
[[nodiscard]] std::vector<FleetCheck> default_fleet_checks();

struct FleetEvaluatorOptions {
  std::size_t fleet_size = 1;
  CarMode initial_mode = CarMode::kNormal;
  /// Decisions materialised per evaluate_batch call; bounds peak memory
  /// (the fleet never holds more than this many Decisions at once).
  std::size_t batch_chunk = 4096;
};

struct FleetTickStats {
  std::uint64_t decisions = 0;
  std::uint64_t allowed = 0;
  std::uint64_t denied = 0;
};

class FleetEvaluator {
 public:
  /// Observes each flushed chunk: the requests answered and their
  /// decisions, in fleet order (vehicle-major, check-minor). Used by
  /// audit/parity consumers; the counting paths skip it.
  using ChunkSink = std::function<void(std::span<const core::SidRequest>,
                                       std::span<const core::Decision>)>;

  /// Resolves `checks` against the image's interner once. The image must
  /// outlive the evaluator. Throws std::invalid_argument on an empty
  /// fleet, an empty workload or a zero chunk size.
  FleetEvaluator(const core::CompiledPolicyImage& image,
                 std::vector<FleetCheck> checks,
                 FleetEvaluatorOptions options = {});

  [[nodiscard]] std::size_t fleet_size() const noexcept {
    return vehicle_modes_.size();
  }
  [[nodiscard]] std::size_t checks_per_vehicle() const noexcept {
    return checks_.size();
  }
  [[nodiscard]] const core::CompiledPolicyImage& image() const noexcept {
    return image_;
  }

  /// Per-vehicle operational mode (mode changes are per vehicle: one
  /// car enters fail-safe, the rest keep driving).
  void set_mode(std::size_t vehicle, CarMode mode);
  [[nodiscard]] CarMode mode(std::size_t vehicle) const;

  /// One fleet sweep through the batched SID path. With a sink, each
  /// chunk is surfaced after evaluation (parity checking, auditing).
  FleetTickStats tick(const ChunkSink& sink = {});

  /// Same requests, per-element image evaluation — what batching saves.
  [[nodiscard]] FleetTickStats tick_scalar() const;

  /// The legacy string pipeline: builds an AccessRequest per element
  /// and lets `policy` hash names per request. Pass the set the image
  /// was compiled from for comparable (byte-identical) decisions.
  [[nodiscard]] FleetTickStats tick_strings(const core::PolicySet& policy) const;

 private:
  /// Appends vehicle `v`'s requests; flushes full chunks through the
  /// batched evaluator.
  void flush(FleetTickStats& stats, const ChunkSink& sink);

  const core::CompiledPolicyImage& image_;
  std::vector<FleetCheck> checks_;             // string form (tick_strings)
  std::vector<core::SidRequest> resolved_;     // SID form, mode filled per tick
  std::array<mac::Sid, 3> mode_sids_{};        // CarMode -> image mode SID
  std::array<threat::ModeId, 3> mode_ids_;     // CarMode -> string mode id
  std::vector<std::uint8_t> vehicle_modes_;
  std::size_t batch_chunk_;
  /// Chunk buffers, reused across flushes and ticks (capacity-warm).
  std::vector<core::SidRequest> batch_;
  std::vector<core::Decision> decisions_;
};

}  // namespace psme::car
