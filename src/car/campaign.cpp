#include "car/campaign.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "core/policy_blob.h"
#include "core/policy_delta.h"
#include "sim/fault_plan.h"
#include "sim/rng.h"

namespace psme::car {

std::string_view to_string(UpdateChannel channel) noexcept {
  switch (channel) {
    case UpdateChannel::kDelta:
      return "delta";
    case UpdateChannel::kBlob:
      return "blob";
  }
  return "unknown";
}

std::string_view to_string(VehicleState state) noexcept {
  switch (state) {
    case VehicleState::kIdle:
      return "idle";
    case VehicleState::kOffered:
      return "offered";
    case VehicleState::kDownloading:
      return "downloading";
    case VehicleState::kValidating:
      return "validating";
    case VehicleState::kCommitting:
      return "committing";
    case VehicleState::kHealthy:
      return "healthy";
    case VehicleState::kFailed:
      return "failed";
    case VehicleState::kDark:
      return "dark";
  }
  return "unknown";
}

std::string_view to_string(CampaignStatus status) noexcept {
  switch (status) {
    case CampaignStatus::kConverged:
      return "converged";
    case CampaignStatus::kHalted:
      return "halted";
    case CampaignStatus::kStalled:
      return "stalled";
  }
  return "unknown";
}

namespace {

[[nodiscard]] bool terminal(VehicleState state) noexcept {
  return state == VehicleState::kHealthy || state == VehicleState::kFailed ||
         state == VehicleState::kDark;
}

}  // namespace

CampaignServer::CampaignServer(std::vector<core::PolicySet> lineage,
                               CampaignConfig config)
    : config_(std::move(config)), lineage_(std::move(lineage)) {
  if (lineage_.empty()) {
    throw std::invalid_argument("CampaignServer: empty lineage");
  }
  images_.reserve(lineage_.size());
  blobs_.reserve(lineage_.size());
  for (std::size_t i = 0; i < lineage_.size(); ++i) {
    if (i > 0 && lineage_[i].version() <= lineage_[i - 1].version()) {
      throw std::invalid_argument(
          "CampaignServer: lineage versions must be strictly increasing");
    }
    // Compile against a prefix replica of the predecessor so the whole
    // lineage shares one SID space and every adjacent delta — and every
    // composition of adjacent deltas — is anchor-valid.
    std::shared_ptr<mac::SidTable> sids;
    if (i > 0) {
      const auto& prev = images_[i - 1]->sids();
      sids = core::replicate_sid_prefix(prev, prev.size());
    }
    auto image = std::make_shared<const core::CompiledPolicyImage>(
        core::CompiledPolicyImage::from_policy_set(lineage_[i],
                                                   std::move(sids)));
    blobs_.push_back(std::make_shared<const std::vector<std::byte>>(
        core::PolicyBlobWriter::write(*image)));
    version_index_.emplace(image->version(), i);
    images_.push_back(std::move(image));
  }
  hop_deltas_.reserve(images_.size() - 1);
  for (std::size_t i = 0; i + 1 < images_.size(); ++i) {
    hop_deltas_.push_back(std::make_shared<std::vector<std::byte>>(
        core::PolicyDeltaWriter::write(*images_[i], *images_[i + 1])));
  }
  probe_ = config_.health_probe.empty() ? default_fleet_checks()
                                        : config_.health_probe;
}

void CampaignServer::break_hop(std::size_t hop) {
  auto& bytes = *hop_deltas_.at(hop);
  if (!bytes.empty()) {
    bytes[bytes.size() / 2] ^= std::byte{0x5A};
  }
  plan_cache_.clear();  // cached plans may have used this hop
}

CampaignServer::Artefact CampaignServer::plan_for(std::uint64_t base_version) {
  if (auto cached = plan_cache_.find(base_version);
      cached != plan_cache_.end()) {
    return cached->second;
  }
  Artefact plan;
  plan.channel = UpdateChannel::kBlob;
  plan.bytes = blobs_.back();

  const auto base = version_index_.find(base_version);
  if (base != version_index_.end() && base->second + 1 < images_.size()) {
    std::vector<std::span<const std::byte>> hops;
    hops.reserve(images_.size() - 1 - base->second);
    for (std::size_t i = base->second; i + 1 < images_.size(); ++i) {
      hops.push_back(std::span<const std::byte>(*hop_deltas_[i]));
    }
    try {
      auto composed = std::make_shared<const std::vector<std::byte>>(
          core::compose_delta_chain(*images_[base->second], hops));
      if (composed->size() < blobs_.back()->size()) {
        plan.channel = UpdateChannel::kDelta;
        plan.bytes = std::move(composed);
      } else {
        ++plan_blob_fallbacks_;  // delta outweighs the blob
      }
    } catch (const core::PolicyDeltaError&) {
      ++plan_blob_fallbacks_;  // broken chain: a hop failed to validate
    }
  } else if (base == version_index_.end()) {
    ++plan_blob_fallbacks_;  // unknown base: no chain exists
  }
  plan_cache_.emplace(base_version, plan);
  return plan;
}

std::vector<CampaignVehicle> CampaignServer::make_fleet(
    std::size_t fleet_size, std::uint64_t seed, double skew,
    std::size_t skew_depth) const {
  if (images_.size() < 2) {
    throw std::invalid_argument(
        "CampaignServer::make_fleet: need at least two lineage versions");
  }
  if (!(skew > 0.0 && skew < 1.0)) {
    throw std::invalid_argument("CampaignServer::make_fleet: skew in (0,1)");
  }
  // Geometric weights over the pre-target versions, newest first.
  const std::size_t depth =
      std::min(skew_depth == 0 ? std::size_t{1} : skew_depth,
               images_.size() - 1);
  std::vector<double> cumulative(depth);
  double total = 0.0;
  double weight = 1.0;
  for (std::size_t d = 0; d < depth; ++d) {
    total += weight;
    cumulative[d] = total;
    weight *= skew;
  }
  std::vector<CampaignVehicle> fleet(fleet_size);
  sim::Rng rng(seed);
  for (std::size_t v = 0; v < fleet_size; ++v) {
    const double u = rng.uniform01() * total;
    std::size_t d = 0;
    while (d + 1 < depth && u >= cumulative[d]) {
      ++d;
    }
    const std::size_t index = images_.size() - 2 - d;  // newest pre-target - d
    auto& vehicle = fleet[v];
    vehicle.id = static_cast<std::uint32_t>(v);
    vehicle.version = images_[index]->version();
    vehicle.fingerprint = images_[index]->fingerprint();
    vehicle.sealed_blob = blobs_[index];
  }
  return fleet;
}

std::uint64_t CampaignServer::backoff_ticks(std::uint32_t vehicle,
                                            std::uint32_t tries) const {
  const std::uint32_t shift = tries > 0 ? tries - 1 : 0;
  std::uint64_t wait = shift < 63 ? config_.backoff_base_ticks << shift
                                  : config_.backoff_cap_ticks;
  wait = std::min(wait, config_.backoff_cap_ticks);
  if (config_.backoff_jitter_ticks > 0) {
    wait += sim::mix3(config_.seed, vehicle, tries) %
            config_.backoff_jitter_ticks;
  }
  return std::max<std::uint64_t>(wait, 1);
}

void CampaignServer::retry_or_fail(CampaignVehicle& vehicle, std::uint64_t now,
                                   Tally& tally) {
  vehicle.staged.clear();
  vehicle.staged.shrink_to_fit();
  if (++vehicle.tries >= config_.max_tries) {
    vehicle.state = VehicleState::kFailed;
    return;
  }
  ++tally.retries;
  vehicle.state = VehicleState::kOffered;
  vehicle.next_attempt_tick = now + backoff_ticks(vehicle.id, vehicle.tries);
}

UpdateResult CampaignServer::validate_staged(const CampaignVehicle& vehicle,
                                             Objective& objective) const {
  const bool via_delta = vehicle.channel == UpdateChannel::kDelta;
  const auto& clean = via_delta ? *objective.delta : *objective.blob;
  auto& memo =
      via_delta ? objective.clean_delta_verdict : objective.clean_blob_verdict;
  const bool is_clean =
      vehicle.staged.size() == clean.size() &&
      std::equal(vehicle.staged.begin(), vehicle.staged.end(), clean.begin());
  if (is_clean && memo) {
    return *memo;
  }
  UpdateResult result = UpdateResult::kOk;
  try {
    if (via_delta) {
      const core::CompiledPolicyImage applied =
          core::PolicyDeltaReader::apply(*objective.delta_base, vehicle.staged);
      result = applied.fingerprint() == objective.fingerprint
                   ? UpdateResult::kOk
                   : UpdateResult::kFingerprintMismatch;
    } else {
      const core::CompiledPolicyImage loaded =
          core::PolicyBlobReader::load(vehicle.staged);
      result = loaded.fingerprint() == objective.fingerprint &&
                       loaded.version() == objective.version
                   ? UpdateResult::kOk
                   : UpdateResult::kFingerprintMismatch;
    }
  } catch (const core::PolicyWireError& error) {
    result = to_update_result(error.fault());
  }
  if (is_clean) {
    memo = result;
  }
  return result;
}

void CampaignServer::step_vehicle(CampaignVehicle& vehicle,
                                  Objective& objective,
                                  UpdateTransport& transport, std::uint64_t now,
                                  CampaignReport& report, Tally& tally) {
  switch (vehicle.state) {
    case VehicleState::kOffered: {
      if (now < vehicle.next_attempt_tick) {
        return;
      }
      if (vehicle.channel == UpdateChannel::kDelta && !objective.delta) {
        vehicle.channel = UpdateChannel::kBlob;  // no delta path planned
      }
      const auto& artefact = vehicle.channel == UpdateChannel::kDelta
                                 ? *objective.delta
                                 : *objective.blob;
      ++vehicle.attempts;
      if (vehicle.channel == UpdateChannel::kDelta) {
        report.delta_bytes_shipped += artefact.size();
      } else {
        report.blob_bytes_shipped += artefact.size();
      }
      Delivery delivery = transport.send(vehicle.id, vehicle.attempts,
                                         std::span<const std::byte>(artefact));
      switch (delivery.status) {
        case DeliveryStatus::kDark:
          vehicle.state = VehicleState::kDark;
          return;
        case DeliveryStatus::kLost:
          // Nothing will arrive; the stage deadline discovers the loss.
          vehicle.state = VehicleState::kDownloading;
          vehicle.stage_deadline = now + config_.download_timeout_ticks;
          return;
        case DeliveryStatus::kDelivered:
          vehicle.staged = std::move(delivery.payload);
          vehicle.state = VehicleState::kValidating;
          return;
      }
      return;
    }
    case VehicleState::kDownloading: {
      if (now >= vehicle.stage_deadline) {
        vehicle.last_result = UpdateResult::kValidationFailed;
        retry_or_fail(vehicle, now, tally);
      }
      return;
    }
    case VehicleState::kValidating: {
      const UpdateResult result = validate_staged(vehicle, objective);
      vehicle.last_result = result;
      if (result == UpdateResult::kOk) {
        vehicle.state = VehicleState::kCommitting;
        return;
      }
      if (vehicle.channel == UpdateChannel::kDelta) {
        if (++vehicle.delta_failures >= config_.blob_fallback_after &&
            objective.blob) {
          vehicle.channel = UpdateChannel::kBlob;
          ++report.blob_fallbacks;
        }
      }
      retry_or_fail(vehicle, now, tally);
      return;
    }
    case VehicleState::kCommitting: {
      if (transport.power_loss_before_commit(vehicle.id, vehicle.attempts)) {
        // Power cut between validate and commit: the staged artefact is
        // gone, the sealed store untouched — on reboot the vehicle is
        // exactly where it was (tests pin this via FleetBoot on the
        // sealed blob). It retries like any other failed try.
        ++vehicle.power_losses;
        ++report.power_loss_reboots;
        retry_or_fail(vehicle, now, tally);
        return;
      }
      if (vehicle.channel == UpdateChannel::kBlob) {
        vehicle.sealed_blob = std::make_shared<const std::vector<std::byte>>(
            std::move(vehicle.staged));
      } else {
        // Delta commit: the vehicle's re-serialised applied image is
        // byte-identical to the server's target blob (the PR 5 delta
        // contract, pinned in tests), so the shared target blob IS the
        // sealed store.
        vehicle.sealed_blob = objective.commit_store;
      }
      vehicle.staged.clear();
      vehicle.staged.shrink_to_fit();
      vehicle.version = objective.version;
      vehicle.fingerprint = objective.fingerprint;
      vehicle.state = VehicleState::kHealthy;
      return;
    }
    case VehicleState::kIdle:
    case VehicleState::kHealthy:
    case VehicleState::kFailed:
    case VehicleState::kDark:
      return;
  }
}

CampaignServer::Objective CampaignServer::objective_for(
    std::uint64_t base_version) {
  Objective objective;
  objective.version = images_.back()->version();
  objective.fingerprint = images_.back()->fingerprint();
  objective.blob = blobs_.back();
  objective.commit_store = blobs_.back();
  const Artefact plan = plan_for(base_version);
  if (plan.channel == UpdateChannel::kDelta) {
    objective.delta = plan.bytes;
    objective.delta_base = images_[version_index_.at(base_version)].get();
  }
  return objective;
}

std::uint64_t CampaignServer::drive(
    std::vector<CampaignVehicle>& fleet,
    const std::vector<std::uint32_t>& members,
    std::unordered_map<std::uint64_t, Objective>& objectives,
    UpdateTransport& transport, std::uint64_t deadline, std::uint64_t& now,
    CampaignReport& report, Tally& tally) {
  const std::uint64_t start = now;
  while (now < deadline) {
    bool live = false;
    for (const std::uint32_t id : members) {
      if (!terminal(fleet[id].state)) {
        live = true;
        break;
      }
    }
    if (!live) {
      break;
    }
    ++now;
    for (const std::uint32_t id : members) {
      CampaignVehicle& vehicle = fleet[id];
      if (terminal(vehicle.state)) {
        continue;
      }
      step_vehicle(vehicle, objectives.at(vehicle.version), transport, now,
                   report, tally);
    }
  }
  // Deadline passed with vehicles still mid-flight: fail them out (their
  // retry budget was not enough inside this wave's window).
  for (const std::uint32_t id : members) {
    if (!terminal(fleet[id].state)) {
      fleet[id].state = VehicleState::kFailed;
    }
  }
  return now - start;
}

std::uint32_t CampaignServer::probe_denies(
    const core::CompiledPolicyImage& image) const {
  std::uint32_t denies = 0;
  for (const FleetCheck& check : probe_) {
    const core::SidRequest request = image.resolve(core::AccessRequest{
        check.subject, check.object, check.access, threat::ModeId{}});
    if (!image.evaluate(request).allowed) {
      ++denies;
    }
  }
  return denies;
}

CampaignReport CampaignServer::run(std::vector<CampaignVehicle>& fleet,
                                   UpdateTransport& transport) {
  CampaignReport report;
  report.target_version = images_.back()->version();
  report.target_fingerprint = images_.back()->fingerprint();

  // Gate threshold: "denying more than the predecessor policy did".
  gate_deny_threshold_ = config_.streak.deny_threshold;
  if (config_.auto_deny_threshold && images_.size() >= 2) {
    gate_deny_threshold_ = probe_denies(*images_[images_.size() - 2]) + 1;
  }

  // Eligible vehicles, id order; wave boundaries as cumulative counts.
  std::vector<std::uint32_t> eligible;
  eligible.reserve(fleet.size());
  for (const CampaignVehicle& vehicle : fleet) {
    if (vehicle.version != report.target_version) {
      eligible.push_back(vehicle.id);
    } else {
      ++report.untouched;
    }
  }
  report.full_blob_bytes_baseline =
      static_cast<std::uint64_t>(eligible.size()) * blobs_.back()->size();

  std::vector<std::size_t> boundaries;
  if (!eligible.empty()) {
    const auto count_for = [&](double fraction) {
      return static_cast<std::size_t>(std::ceil(
          fraction * static_cast<double>(eligible.size())));
    };
    boundaries.push_back(std::max<std::size_t>(
        1, std::min(eligible.size(), count_for(config_.canary_fraction))));
    for (const double fraction : config_.wave_fractions) {
      const std::size_t upto = std::min(eligible.size(), count_for(fraction));
      if (upto > boundaries.back()) {
        boundaries.push_back(upto);
      }
    }
    if (boundaries.back() < eligible.size()) {
      boundaries.push_back(eligible.size());
    }
  }

  // Per-base-version objectives, shared across waves.
  std::unordered_map<std::uint64_t, Objective> objectives;
  for (const std::uint32_t id : eligible) {
    const std::uint64_t base = fleet[id].version;
    if (!objectives.contains(base)) {
      objectives.emplace(base, objective_for(base));
    }
  }

  std::uint64_t now = 0;
  std::size_t covered = 0;
  bool halted = false;
  for (std::size_t w = 0; w < boundaries.size() && !halted; ++w) {
    const std::vector<std::uint32_t> wave(eligible.begin() + covered,
                                          eligible.begin() + boundaries[w]);
    covered = boundaries[w];

    for (const std::uint32_t id : wave) {
      CampaignVehicle& vehicle = fleet[id];
      vehicle.state = VehicleState::kOffered;
      vehicle.tries = 0;
      vehicle.next_attempt_tick = now;
    }
    Tally tally;
    const std::uint64_t ticks =
        drive(fleet, wave, objectives, transport,
              now + config_.wave_timeout_ticks, now, report, tally);

    WaveStats stats;
    stats.wave = w;
    stats.size = wave.size();
    stats.ticks = ticks;
    stats.retries = tally.retries;
    report.retries += tally.retries;
    std::vector<std::uint32_t> committed;
    for (const std::uint32_t id : wave) {
      switch (fleet[id].state) {
        case VehicleState::kHealthy:
          ++stats.committed;
          committed.push_back(id);
          break;
        case VehicleState::kFailed:
          ++stats.failed;
          break;
        case VehicleState::kDark:
          ++stats.dark;
          break;
        default:
          break;
      }
    }
    const std::size_t reachable = stats.size - stats.dark;
    stats.commit_fraction =
        reachable == 0 ? 1.0
                       : static_cast<double>(stats.committed) /
                             static_cast<double>(reachable);

    // Observation window: the committed cohort answers the probe under
    // a fresh gate monitor (reset-at-window-open semantics — see
    // DenyStreakMonitor::reset()). All committed vehicles run the same
    // target image, so one probe evaluation per distinct version feeds
    // every vehicle's deny count.
    if (!committed.empty() && !probe_.empty()) {
      monitor::DenyStreakMonitor gate(
          committed.size(),
          monitor::DenyStreakOptions{gate_deny_threshold_,
                                     config_.streak.streak_ticks});
      std::unordered_map<std::uint64_t, std::uint32_t> denies_by_version;
      std::vector<std::uint32_t> counts(committed.size());
      for (std::size_t i = 0; i < committed.size(); ++i) {
        const std::uint64_t version = fleet[committed[i]].version;
        auto entry = denies_by_version.find(version);
        if (entry == denies_by_version.end()) {
          entry = denies_by_version
                      .emplace(version,
                               probe_denies(
                                   *images_[version_index_.at(version)]))
                      .first;
        }
        counts[i] = entry->second;
      }
      for (std::uint64_t tick = 0; tick < config_.health_ticks; ++tick) {
        gate.observe_tick(counts);
      }
      stats.healthy_fraction = gate.healthy_fraction();
      now += config_.health_ticks;
    }

    stats.gate_passed =
        stats.commit_fraction >= config_.min_commit_fraction &&
        stats.healthy_fraction >= config_.min_healthy_fraction;
    report.waves.push_back(stats);
    halted = !stats.gate_passed;
  }

  if (halted) {
    report.status = CampaignStatus::kHalted;
    run_rollback(fleet, transport, now, report);
  } else {
    report.status = CampaignStatus::kConverged;
    for (const std::uint32_t id : eligible) {
      if (fleet[id].state != VehicleState::kHealthy &&
          fleet[id].state != VehicleState::kDark) {
        report.status = CampaignStatus::kStalled;
        break;
      }
    }
  }

  report.ticks = now;
  for (const CampaignVehicle& vehicle : fleet) {
    switch (vehicle.state) {
      case VehicleState::kHealthy:
        ++report.healthy;
        break;
      case VehicleState::kFailed:
        ++report.failed;
        break;
      case VehicleState::kDark:
        ++report.dark;
        break;
      default:
        break;
    }
  }
  audit_fleet(fleet, report);
  return report;
}

void CampaignServer::run_rollback(std::vector<CampaignVehicle>& fleet,
                                  UpdateTransport& transport,
                                  std::uint64_t& now, CampaignReport& report) {
  if (images_.size() < 2) {
    return;  // nothing older to roll back to
  }
  if (!rollback_image_) {
    // FleetBoot refuses version rollbacks, so roll FORWARD: the
    // predecessor's content restamped past the (bad) target version,
    // compiled in the lineage SID space so a delta off the target image
    // anchors cleanly.
    core::PolicySet content = lineage_[lineage_.size() - 2];
    content.set_version(images_.back()->version() + 1);
    const auto& target_sids = images_.back()->sids();
    rollback_image_ = std::make_shared<const core::CompiledPolicyImage>(
        core::CompiledPolicyImage::from_policy_set(
            content,
            core::replicate_sid_prefix(target_sids, target_sids.size())));
    rollback_blob_ = std::make_shared<const std::vector<std::byte>>(
        core::PolicyBlobWriter::write(*rollback_image_));
    rollback_delta_ = std::make_shared<const std::vector<std::byte>>(
        core::PolicyDeltaWriter::write(*images_.back(), *rollback_image_));
  }
  report.rolled_back = true;
  report.rollback_version = rollback_image_->version();
  report.rollback_fingerprint = rollback_image_->fingerprint();

  Objective objective;
  objective.version = rollback_image_->version();
  objective.fingerprint = rollback_image_->fingerprint();
  objective.delta_base = images_.back().get();
  objective.delta = rollback_delta_;
  objective.blob = rollback_blob_;
  objective.commit_store = rollback_blob_;

  // Every vehicle that committed the (bad) target rolls back — across
  // all waves run so far. Mid-flight and failed vehicles never left
  // their old version; they need no rollback.
  std::vector<std::uint32_t> victims;
  std::unordered_map<std::uint64_t, Objective> objectives;
  objectives.emplace(images_.back()->version(), std::move(objective));
  for (CampaignVehicle& vehicle : fleet) {
    if (vehicle.state == VehicleState::kHealthy &&
        vehicle.fingerprint == images_.back()->fingerprint()) {
      vehicle.state = VehicleState::kOffered;
      vehicle.tries = 0;
      vehicle.delta_failures = 0;
      vehicle.channel = UpdateChannel::kDelta;
      vehicle.next_attempt_tick = now;
      victims.push_back(vehicle.id);
    }
  }
  Tally tally;
  drive(fleet, victims, objectives, transport,
        now + config_.wave_timeout_ticks, now, report, tally);
  report.retries += tally.retries;
  for (const std::uint32_t id : victims) {
    if (fleet[id].state == VehicleState::kHealthy) {
      ++report.rolled_back_vehicles;
    }
  }
}

void CampaignServer::audit_fleet(const std::vector<CampaignVehicle>& fleet,
                                 CampaignReport& report) const {
  // The zero-corrupt-images invariant: every vehicle's sealed store must
  // probe clean, match the vehicle's own record, and carry a fingerprint
  // the server ever released (lineage or rollback). Injected damage may
  // strand a vehicle on an OLD version; it must never corrupt a store.
  for (const CampaignVehicle& vehicle : fleet) {
    if (!vehicle.sealed_blob) {
      ++report.corrupt_images;
      continue;
    }
    try {
      const core::PolicyBlobInfo info =
          core::PolicyBlobReader::probe(*vehicle.sealed_blob);
      if (info.fingerprint != vehicle.fingerprint) {
        ++report.corrupt_images;
        continue;
      }
      bool known = rollback_image_ &&
                   info.fingerprint == rollback_image_->fingerprint();
      for (const auto& image : images_) {
        known = known || info.fingerprint == image->fingerprint();
      }
      if (!known) {
        ++report.corrupt_images;
      }
    } catch (const core::PolicyBlobError&) {
      ++report.corrupt_images;
    }
  }
}

}  // namespace psme::car
