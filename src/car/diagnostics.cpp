#include "car/diagnostics.h"

#include <array>
#include <stdexcept>

#include "car/ids.h"

namespace psme::car::diag {

can::Frame make_request(std::uint8_t target, std::uint8_t service,
                        std::uint8_t d0, std::uint8_t d1) {
  const std::array<std::uint8_t, 4> payload{target, service, d0, d1};
  return can::Frame(can::CanId::standard(msg::kDiagRequest),
                    std::span<const std::uint8_t>(payload));
}

std::optional<Response> parse_response(const can::Frame& frame) {
  if (frame.id().is_extended() || frame.id().raw() != msg::kDiagResponse ||
      frame.dlc() < 4) {
    return std::nullopt;
  }
  const auto data = frame.data();
  Response r;
  r.target = data[0];
  if (data[1] == kNegativeResponse) {
    r.negative = true;
    r.service = data[2];
    r.d0 = data[2];
    r.d1 = data[3];
  } else {
    r.negative = false;
    r.service = static_cast<std::uint8_t>(data[1] - 0x40);
    r.d0 = data[2];
    r.d1 = data[3];
  }
  return r;
}

DiagResponder::DiagResponder(std::uint8_t address, ReadFn read, WriteFn write,
                             ResetFn reset)
    : address_(address),
      read_(std::move(read)),
      write_(std::move(write)),
      reset_(std::move(reset)) {
  if (!read_ || !write_ || !reset_) {
    throw std::invalid_argument("DiagResponder: all service hooks required");
  }
}

can::Frame DiagResponder::positive(std::uint8_t service, std::uint8_t d0,
                                   std::uint8_t d1) const {
  const std::array<std::uint8_t, 4> payload{
      address_, static_cast<std::uint8_t>(service + 0x40), d0, d1};
  return can::Frame(can::CanId::standard(msg::kDiagResponse),
                    std::span<const std::uint8_t>(payload));
}

can::Frame DiagResponder::negative(std::uint8_t service, std::uint8_t nrc) const {
  const std::array<std::uint8_t, 4> payload{address_, kNegativeResponse,
                                            service, nrc};
  return can::Frame(can::CanId::standard(msg::kDiagResponse),
                    std::span<const std::uint8_t>(payload));
}

std::optional<can::Frame> DiagResponder::handle(const can::Frame& request,
                                                sim::Rng& rng) {
  if (request.id().is_extended() ||
      request.id().raw() != msg::kDiagRequest || request.dlc() < 4) {
    return std::nullopt;
  }
  const auto data = request.data();
  if (data[0] != address_) return std::nullopt;
  const std::uint8_t service = data[1];
  const std::uint8_t d0 = data[2];
  const std::uint8_t d1 = data[3];

  switch (service) {
    case kReadDataById: {
      const auto value = read_(d0);
      if (!value.has_value()) return negative(service, kNrcRequestOutOfRange);
      return positive(service, d0, *value);
    }
    case kSecurityAccess: {
      if (d0 == kSubRequestSeed) {
        pending_seed_ = static_cast<std::uint8_t>(rng.uniform(1, 255));
        return positive(service, kSubRequestSeed, *pending_seed_);
      }
      if (d0 == kSubSendKey) {
        if (!pending_seed_.has_value()) {
          return negative(service, kNrcSecurityAccessDenied);
        }
        if (d1 != key_from_seed(*pending_seed_)) {
          pending_seed_.reset();
          return negative(service, kNrcInvalidKey);
        }
        unlocked_ = true;
        pending_seed_.reset();
        return positive(service, kSubSendKey, 0);
      }
      return negative(service, kNrcRequestOutOfRange);
    }
    case kEcuReset: {
      if (!unlocked_) return negative(service, kNrcSecurityAccessDenied);
      reset_();
      return positive(service, 0, 0);
    }
    case kWriteDataById: {
      if (!unlocked_) return negative(service, kNrcSecurityAccessDenied);
      if (!write_(d0, d1)) return negative(service, kNrcRequestOutOfRange);
      return positive(service, d0, d1);
    }
    default:
      return negative(service, kNrcServiceNotSupported);
  }
}

}  // namespace psme::car::diag
