// psme::car — functional base policy for the connected car.
//
// The policy set derived from Table I only *restricts*: it says what each
// entry point may not do to a threatened asset. Under the deny-by-default
// engine, the vehicle also needs grants for legitimate traffic (resource
// isolation "base permissions" in the sense of Tan et al., which the paper
// extends). base_policy() provides those grants at low priority so that
// Table I restrictions always dominate on conflict; full_policy() is the
// deployable union of both.
#pragma once

#include "core/policy.h"
#include "threat/threat_model.h"

namespace psme::car {

/// Low-priority grants covering normal operation of every node.
[[nodiscard]] core::PolicySet base_policy();

/// base_policy() merged with the policy compiled from `model` (version
/// `version`, name "car"). This is what the vehicle deploys.
[[nodiscard]] core::PolicySet full_policy(const threat::ThreatModel& model,
                                          std::uint64_t version = 1);

/// The canonical post-deployment 1-rule OTA change (paper Sec. V-A, the
/// T15 response): quarantine the aftermarket-facing infotainment entry
/// point at top priority pending revalidation. ONE definition shared by
/// the OTA example, the provisioning CLI, the delta tests and
/// bench_policy_delta, so the "1-rule update" they all stage, measure
/// and interop-compare is the same rule.
[[nodiscard]] core::PolicyRule quarantine_rule();

}  // namespace psme::car
