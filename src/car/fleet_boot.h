// psme::car — zero-recompile vehicle bring-up from a persistent policy
// blob.
//
// Production vehicles never see the threat model: the OEM runs the
// derivation once, serialises the sealed CompiledPolicyImage (+ its
// SidTable) with core::PolicyBlobWriter, and every vehicle boots by
// loading the blob — validation, one reconstruction pass, fingerprint
// cross-check — then drives its FleetEvaluator against the loaded image.
// FleetBoot is that bring-up path: it owns the loaded image (and its SID
// space) and the evaluator over it, so callers hold one object instead
// of wiring image lifetime by hand.
//
// OTA updates ride two channels over one staging flow: apply_update()
// takes a full self-contained blob, apply_delta_update() takes a
// fingerprint-anchored binary delta against the RUNNING image
// (core/policy_delta.h — a fraction of the blob's bytes when few rules
// changed). Both validate first, refuse version rollbacks, swap the
// image in, and rebuild the evaluator — every cached SID resolution and
// prototype decision from the old policy is flushed; per-vehicle
// operating modes survive the swap (a fail-safe car stays in fail-safe
// through an update).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "car/fleet_evaluator.h"
#include "core/policy_blob.h"
#include "core/policy_delta.h"
#include "core/policy_image.h"

namespace psme::car {

/// Why an OTA staging attempt did (or did not) go live — the telemetry
/// the campaign orchestrator (car/campaign.h) keys retry/fallback/halt
/// decisions on. "Corrupt bytes" (kValidationFailed: retry the
/// transfer), "stale or wrong base" (kAnchorMismatch: re-plan the
/// update path), "content does not match its manifest"
/// (kFingerprintMismatch: re-download or fall back to the full blob)
/// and "replayed old version" (kRollbackRefused: drop it) demand
/// different recoveries; a bool collapses them all.
enum class UpdateResult : std::uint8_t {
  kOk,                   // update validated, committed and live
  kRollbackRefused,      // artefact carries version <= running version
  kValidationFailed,     // malformed/corrupted bytes (structural reject)
  kFingerprintMismatch,  // content does not match the recorded manifest
  kAnchorMismatch,       // delta anchored to a different base image
};

[[nodiscard]] std::string_view to_string(UpdateResult result) noexcept;

/// Maps a wire-layer rejection kind onto the update taxonomy — the
/// shared translation FleetBoot::try_apply_* and the campaign engine's
/// vehicle-side validation both use, so one classification governs all
/// OTA telemetry.
[[nodiscard]] UpdateResult to_update_result(core::WireFault fault) noexcept;

class FleetBoot {
 public:
  /// Boots from a serialized policy blob: validated load into a fresh
  /// SID space, then a FleetEvaluator over `checks`. Throws
  /// core::PolicyBlobError on a malformed blob and whatever
  /// FleetEvaluator throws on a bad workload/options.
  FleetBoot(std::span<const std::byte> blob, std::vector<FleetCheck> checks,
            FleetEvaluatorOptions options = {});

  /// As above, loading the blob from a file — mmap-backed where the
  /// platform allows, so a v2 blob boots as a zero-copy view over the
  /// mapping (core/policy_buffer.h). `trust` selects the validation
  /// depth: kUntrusted (default) runs the full one-pass validation;
  /// kSealedStore is the O(1) attach for a blob staged and validated on
  /// this device earlier (core::BlobTrust).
  FleetBoot(const std::string& blob_path, std::vector<FleetCheck> checks,
            FleetEvaluatorOptions options = {},
            core::BlobTrust trust = core::BlobTrust::kUntrusted);

  /// The blob came from the OTA channel; the image it loads into and the
  /// evaluator over it are this object's — neither reference outlives it.
  [[nodiscard]] FleetEvaluator& fleet() noexcept { return *fleet_; }
  [[nodiscard]] const FleetEvaluator& fleet() const noexcept {
    return *fleet_;
  }
  [[nodiscard]] const core::CompiledPolicyImage& image() const noexcept {
    return *image_;
  }
  [[nodiscard]] std::uint64_t policy_version() const noexcept {
    return image_->version();
  }

  /// Stages an OTA policy update delivered as a blob: validated load
  /// (malformed blobs throw core::PolicyBlobError and change nothing),
  /// version-rollback refusal (returns false and changes nothing — a
  /// replayed old blob must not downgrade the fleet), then the swap: the
  /// new image replaces the old and the evaluator is rebuilt against it,
  /// flushing every cached resolution and prototype decision. Vehicle
  /// modes carry over. Returns true when the update is live. Strong
  /// guarantee: the replacement image AND evaluator are fully built
  /// before the old ones are released, so a throw at any point (bad
  /// blob, allocation failure at the OTA moment of peak memory) leaves
  /// the running policy answering exactly as before.
  [[nodiscard]] bool apply_update(std::span<const std::byte> blob);

  /// Stages an OTA policy update delivered as a fingerprint-anchored
  /// binary delta (core/policy_delta.h) — the bandwidth-frugal channel:
  /// validate that the delta is anchored to the RUNNING image's
  /// fingerprint, apply the edit script into a fresh sealed image
  /// (malformed, wrong-base or tampered deltas throw
  /// core::PolicyDeltaError and change nothing), refuse version
  /// rollbacks (returns false, changes nothing), then the same swap as
  /// apply_update: evaluator rebuilt, every cached resolution and
  /// prototype decision flushed, vehicle modes carried over. Returns
  /// true when the update is live. Same strong guarantee: the
  /// replacement image AND evaluator are fully built before the old
  /// ones are released.
  [[nodiscard]] bool apply_delta_update(std::span<const std::byte> delta);

  /// apply_update with the failure REASON surfaced instead of thrown:
  /// same staging flow and the same strong guarantee (anything but kOk
  /// leaves the running policy answering exactly as before), but a
  /// malformed blob earns UpdateResult::kValidationFailed (or
  /// kFingerprintMismatch when the structure parsed and only the final
  /// content gate failed) rather than a PolicyBlobError. The campaign
  /// engine and fleet telemetry consume this form; the bool overload
  /// above remains the throw-on-malformed shim for callers that treat
  /// a bad artefact as exceptional.
  [[nodiscard]] UpdateResult try_apply_update(std::span<const std::byte> blob);

  /// apply_delta_update with the failure reason surfaced: additionally
  /// distinguishes kAnchorMismatch (delta anchored to a different base
  /// than the RUNNING image — re-plan, the bytes may be pristine) from
  /// corrupt-byte kValidationFailed and manifest-gate
  /// kFingerprintMismatch. Same strong guarantee as the bool shim.
  [[nodiscard]] UpdateResult try_apply_delta_update(
      std::span<const std::byte> delta);

 private:
  void boot(core::CompiledPolicyImage image, std::vector<FleetCheck> checks,
            FleetEvaluatorOptions options);

  /// The shared tail of both update channels: rollback refusal, complete
  /// replacement construction (modes carried over), then the no-throw
  /// pointer-swap commit. Returns false (changing nothing) on rollback.
  [[nodiscard]] bool commit_update(
      std::unique_ptr<core::CompiledPolicyImage> updated_image);

  std::unique_ptr<core::CompiledPolicyImage> image_;
  std::vector<FleetCheck> checks_;  // kept to rebuild on update
  FleetEvaluatorOptions options_;
  /// References *image_; unique_ptr (FleetEvaluator pins itself) so an
  /// update can build the replacement before releasing the incumbent.
  std::unique_ptr<FleetEvaluator> fleet_;
};

}  // namespace psme::car
