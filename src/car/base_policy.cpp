#include "car/base_policy.h"

#include "car/ids.h"
#include "car/modes.h"
#include "core/policy_compiler.h"

namespace psme::car {

namespace {

core::PolicyRule grant(std::string id, std::string subject, std::string object,
                       threat::Permission permission,
                       std::vector<CarMode> modes, std::string why) {
  core::PolicyRule rule;
  rule.id = std::move(id);
  rule.subject = std::move(subject);
  rule.object = std::move(object);
  rule.permission = permission;
  for (CarMode m : modes) rule.modes.push_back(mode_id(m));
  rule.priority = 0;  // Table I restrictions (priority >= 10) dominate
  rule.rationale = std::move(why);
  return rule;
}

}  // namespace

core::PolicySet base_policy() {
  using threat::Permission;
  core::PolicySet set("car-base", 1);
  set.set_default_allow(false);

  // Sensor broadcasts are the vehicle's shared situational picture.
  set.add_rule(grant("B01", "*", asset::kSensors, Permission::kRead, {},
                     "all nodes consume sensor broadcasts"));

  // Crash response: the safety subsystem cuts propulsion and unlocks.
  set.add_rule(grant("B02", entry::kSafetyCritical, asset::kEvEcu,
                     Permission::kWrite, {CarMode::kFailSafe},
                     "fail-safe propulsion cut-off after accident"));
  set.add_rule(grant("B03", entry::kDoorLocks, asset::kEvEcu,
                     Permission::kWrite, {CarMode::kFailSafe},
                     "immobilise vehicle when theft confirmed"));
  set.add_rule(grant("B04", entry::kSafetyCritical, asset::kDoorLocks,
                     Permission::kWrite, {CarMode::kFailSafe},
                     "unlock doors during accident"));
  set.add_rule(grant("B05", entry::kEmergency, asset::kConnectivity,
                     Permission::kWrite, {CarMode::kFailSafe},
                     "place emergency call"));

  // Drivetrain control loop. Note: deliberately NO write grant toward the
  // EPS — steering input is mechanical/direct, and Table I row T05 ("Any
  // node" restricted to R of EPS) only stays consistent if no node needs
  // to command the EPS outside remote diagnostics (B12 below).
  set.add_rule(grant("B07", entry::kEvEcu, asset::kEngine, Permission::kWrite,
                     {CarMode::kNormal},
                     "torque demand"));

  // Comfort and telematics.
  set.add_rule(grant("B08", entry::kDoorLocks, asset::kSafetyCritical,
                     Permission::kWrite, {CarMode::kNormal},
                     "arm alarm when locking"));
  set.add_rule(grant("B09", entry::kInfotainment, asset::kEvEcu,
                     Permission::kRead, {CarMode::kNormal},
                     "display vehicle status"));
  set.add_rule(grant("B10", entry::kInfotainment, asset::kSensors,
                     Permission::kRead, {CarMode::kNormal},
                     "display speed / navigation"));

  // Remote diagnostics (authorised engineer only, by mode gating).
  set.add_rule(grant("B11", entry::kConnectivity, asset::kEvEcu,
                     Permission::kReadWrite, {CarMode::kRemoteDiagnostic},
                     "remote diagnostics of ECU"));
  set.add_rule(grant("B12", entry::kConnectivity, asset::kEps,
                     Permission::kReadWrite, {CarMode::kRemoteDiagnostic},
                     "remote diagnostics of EPS"));
  set.add_rule(grant("B13", entry::kConnectivity, asset::kEngine,
                     Permission::kReadWrite, {CarMode::kRemoteDiagnostic},
                     "remote diagnostics of engine"));
  set.add_rule(grant("B14", entry::kConnectivity, asset::kDoorLocks,
                     Permission::kWrite, {CarMode::kRemoteDiagnostic},
                     "workshop door control"));
  set.add_rule(grant("B15", entry::kConnectivity, asset::kInfotainment,
                     Permission::kWrite, {CarMode::kRemoteDiagnostic},
                     "head-unit software provisioning"));

  return set;
}

core::PolicySet full_policy(const threat::ThreatModel& model,
                            std::uint64_t version) {
  core::CompilerOptions options;
  options.name = "car";
  options.version = version;
  options.default_allow = false;
  options.base_priority = 10;  // above every base grant
  const core::PolicySet derived = core::PolicyCompiler(options).compile(model);

  core::PolicySet full("car", version);
  full.set_default_allow(false);
  full.merge(base_policy());
  full.merge(derived);
  return full;
}

core::PolicyRule quarantine_rule() {
  // Aggregate-constructed (not field-assigned): gcc 12's -O3 restrict
  // pass false-positives on assigning a long literal into an empty
  // std::string member, and the library builds with -Werror.
  return core::PolicyRule{
      "T15.quarantine",
      "ep.infotainment",
      "*",
      threat::Permission::kNone,
      {},
      1000,
      "T15: aftermarket surface quarantined pending revalidation"};
}

}  // namespace psme::car
