#include "car/policy_binding.h"

#include <algorithm>
#include <array>

#include "car/network_mgmt.h"

namespace psme::car {

namespace {

void add_all(hpe::ApprovedIdList& list, const std::vector<std::uint32_t>& ids) {
  for (const auto id : ids) list.add(can::CanId::standard(id));
}

void add_content_rules(const std::string& node, CarMode mode,
                       hpe::ListPair& lists) {
  // Fine-grained, situational constraints (paper Sec. V-A.2's "more
  // fine-grained policies"). Ids must already be on the relevant list;
  // these rules narrow the accepted payloads.
  if (node == "doors" && mode == CarMode::kFailSafe) {
    // During an accident only UNLOCK may traverse the bus (threat T14).
    lists.content_rules.push_back(
        hpe::PayloadRule{msg::kLockCommand, 0, op::kUnlock, op::kUnlock});
  }
  if (node == "connectivity" && mode == CarMode::kFailSafe) {
    // Table I keeps RW toward the modem in fail-safe (T09: emergency and
    // door subsystems must command it), so id filtering alone cannot stop
    // a malicious DISABLE; the content rule narrows fail-safe commands to
    // ENABLE only.
    lists.content_rules.push_back(
        hpe::PayloadRule{msg::kModemCommand, 0, op::kEnable, op::kEnable});
  }
  if (node == "safety") {
    if (mode == CarMode::kNormal) {
      // Alarm can be armed over the bus but never disarmed (threat T16);
      // disarm happens via the physical key path.
      lists.content_rules.push_back(
          hpe::PayloadRule{msg::kAlarmCommand, 0, op::kArm, op::kArm});
    }
    // Crash-grade acceleration values from the bus are implausible; the
    // airbag event (hard-wired) is the authoritative crash signal (T15).
    lists.content_rules.push_back(hpe::PayloadRule{
        msg::kSensorAccel, 0, 0,
        static_cast<std::uint8_t>(199)});
  }
}

/// Packs (entry point SID, asset SID, access, mode) into one memo key.
/// Entity-name SIDs are dense and tiny (dozens for the case study); 24
/// bits each leaves 16 for the enum pair.
[[nodiscard]] std::uint64_t memo_key(mac::Sid entry_point, mac::Sid asset,
                                     core::AccessType access,
                                     CarMode mode) noexcept {
  return (static_cast<std::uint64_t>(entry_point) << 40) |
         (static_cast<std::uint64_t>(asset) << 16) |
         (static_cast<std::uint64_t>(mode) << 1) |
         static_cast<std::uint64_t>(access == core::AccessType::kWrite);
}

}  // namespace

BindingCompiler::BindingCompiler(
    std::shared_ptr<const core::CompiledPolicyImage> retained,
    const core::CompiledPolicyImage* image, BindingOptions options)
    : retained_(std::move(retained)),
      image_(image != nullptr ? *image : *retained_),
      options_(options),
      sids_(image_.sid_table()) {
  // Resolve the three operational modes into image SID space once; every
  // memoised question after this runs without touching a string.
  for (CarMode mode : kAllModes) {
    mode_sids_[static_cast<std::size_t>(mode)] =
        image_.mode_sid(mode_id(mode));
  }
}

BindingCompiler::BindingCompiler(const core::CompiledPolicyImage& image,
                                 BindingOptions options)
    : BindingCompiler(nullptr, &image, options) {}

BindingCompiler::BindingCompiler(const core::PolicySet& policy,
                                 BindingOptions options)
    : BindingCompiler(policy.image_ptr(), nullptr, options) {}

bool BindingCompiler::entry_point_may(const std::string& entry_point,
                                      const std::string& asset_id,
                                      core::AccessType access, CarMode mode) {
  ++stats_.queries;
  // Interning through the *shared* table (rather than a private one)
  // keeps the whole pipeline in one SID space; names the policy already
  // knows resolve to their existing SIDs, fresh entity names grow the
  // table without disturbing any issued SID.
  const mac::Sid subject = sids_->intern(entry_point);
  const mac::Sid object = sids_->intern(asset_id);
  const std::uint64_t key = memo_key(subject, object, access, mode);
  const auto it = memo_.find(key);
  if (it != memo_.end()) return it->second;

  ++stats_.policy_evaluations;
  core::SidRequest request;
  request.subject = subject;
  request.object = object;
  request.access = access;
  request.mode = mode_sids_[static_cast<std::size_t>(mode)];
  const bool verdict = image_.evaluate(request).allowed;
  memo_.emplace(key, verdict);
  stats_.unique_questions = memo_.size();
  return verdict;
}

bool BindingCompiler::node_may(const std::string& node,
                               const std::string& asset_id,
                               core::AccessType access, CarMode mode) {
  const auto entry_points = entry_points_of(node);
  return std::any_of(entry_points.begin(), entry_points.end(),
                     [&](const std::string& ep) {
                       return entry_point_may(ep, asset_id, access, mode);
                     });
}

bool BindingCompiler::anyone_may_write(const std::string& asset_id,
                                       CarMode mode) {
  for (const auto& binding : node_bindings()) {
    for (const auto& ep : binding.entry_points) {
      if (entry_point_may(ep, asset_id, core::AccessType::kWrite, mode)) {
        return true;
      }
    }
  }
  return false;
}

hpe::ListPair BindingCompiler::build_lists(const std::string& node,
                                           CarMode mode) {
  hpe::ListPair lists;

  // Structural: everyone hears mode changes and the fail-safe trigger.
  lists.read.add(can::CanId::standard(msg::kModeChange));
  lists.read.add(can::CanId::standard(msg::kFailSafeTrigger));

  // Structural: diagnostics only inside remote-diagnostic mode.
  if (mode == CarMode::kRemoteDiagnostic) {
    lists.read.add(can::CanId::standard(msg::kDiagRequest));
    lists.write.add(can::CanId::standard(msg::kDiagResponse));
    if (node == "connectivity") {
      lists.write.add(can::CanId::standard(msg::kDiagRequest));
      lists.read.add(can::CanId::standard(msg::kDiagResponse));
    }
  }

  for (const AssetBinding& asset : asset_bindings()) {
    const bool owns = asset.owner_node == node;
    if (owns) {
      // Owners publish their own status unconditionally...
      add_all(lists.write, asset.status_ids);
      // ...but accept commands only in modes where a legitimate commander
      // exists; otherwise the frames are spoofed by construction.
      if (!options_.writer_existence_gate ||
          anyone_may_write(asset.asset_id, mode)) {
        add_all(lists.read, asset.command_ids);
      }
      continue;
    }
    if (node_may(node, asset.asset_id, core::AccessType::kRead, mode)) {
      add_all(lists.read, asset.status_ids);
    }
    if (node_may(node, asset.asset_id, core::AccessType::kWrite, mode)) {
      add_all(lists.write, asset.command_ids);
    }
  }

  // The safety node owns the fail-safe trigger (listed among its status
  // ids) — already covered by the owner branch above.
  if (options_.content_rules) add_content_rules(node, mode, lists);
  return lists;
}

can::WireBindingTable BindingCompiler::build_wire_table(
    const std::string& node, CarMode mode) {
  can::WireBindingTable::Builder builder;
  builder.set_mode(mode_sids_[static_cast<std::size_t>(mode)]);

  // Structural pass-throughs: mode changes, the fail-safe trigger and
  // the OSEK-NM ring window are bus plumbing every node must hear — the
  // 5-bit NM address space maps to exactly [0x420, 0x43F] (the PR 9
  // regression pin).
  builder.pass_standard(msg::kModeChange);
  builder.pass_standard(msg::kFailSafeTrigger);
  builder.pass_standard_range(nm::kNmBase, nm::kNmBase | nm::kMaxAddress);
  if (mode == CarMode::kRemoteDiagnostic) {
    // Diagnostic payloads exceed one frame; both ids carry ISO-TP. Bind
    // them to the connectivity entry point (the paper's remote-diag
    // commander) against the EV ECU — the asset under diagnosis, which
    // the remote-diagnostic rules grant that entry point read AND write
    // on (requests command the ECU, responses report its state).
    const mac::Sid diag_subject = sids_->intern(entry::kConnectivity);
    const mac::Sid diag_object = sids_->intern(asset::kEvEcu);
    const std::array<mac::Sid, 1> diag_subjects{diag_subject};
    builder.bind_standard(msg::kDiagRequest, diag_subjects, diag_object,
                          core::AccessType::kWrite, /*isotp=*/true);
    builder.bind_standard(msg::kDiagResponse, diag_subjects, diag_object,
                          core::AccessType::kRead, /*isotp=*/true);
  }

  // Candidate-subject pools. The node's own entry points answer READ
  // questions; the system-wide pool answers the ∃-writer question for
  // command ids of owned assets.
  std::vector<mac::Sid> node_subjects;
  for (const std::string& ep : entry_points_of(node)) {
    node_subjects.push_back(sids_->intern(ep));
  }
  std::vector<mac::Sid> all_subjects;
  for (const NodeBinding& nb : node_bindings()) {
    for (const std::string& ep : nb.entry_points) {
      all_subjects.push_back(sids_->intern(ep));
    }
  }

  // Structural ids stay pass-through even when an asset also lists them
  // (the fail-safe trigger doubles as a safety status id): everyone must
  // hear them regardless of read permissions.
  const auto structural = [](std::uint32_t id) {
    return id == msg::kModeChange || id == msg::kFailSafeTrigger;
  };

  for (const AssetBinding& asset : asset_bindings()) {
    const mac::Sid object = sids_->intern(asset.asset_id);
    if (!node_subjects.empty()) {
      for (const std::uint32_t id : asset.status_ids) {
        if (structural(id)) continue;
        builder.bind_standard(id, node_subjects, object,
                              core::AccessType::kRead);
      }
    }
    if (asset.owner_node == node) {
      for (const std::uint32_t id : asset.command_ids) {
        builder.bind_standard(id, all_subjects, object,
                              core::AccessType::kWrite);
      }
    }
  }
  return builder.build();
}

hpe::HpeConfig BindingCompiler::build_hpe_config(const std::string& node) {
  hpe::HpeConfig config;
  config.mode_frame_id = msg::kModeChange;
  if (options_.mode_conditional) {
    for (CarMode mode : kAllModes) {
      config.per_mode[static_cast<std::uint8_t>(mode)] =
          build_lists(node, mode);
    }
  }
  // Default lists (unknown mode byte, or mode-conditionality ablated):
  // normal-mode lists.
  config.default_lists = build_lists(node, CarMode::kNormal);
  return config;
}

std::vector<can::AcceptanceFilter> BindingCompiler::build_rx_filters(
    const std::string& node, CarMode mode) {
  // Reconstruct the read list and express it as exact-match filters. The
  // approved lists built above only use exact standard ids, so this is a
  // faithful software equivalent.
  std::vector<can::AcceptanceFilter> filters;
  const hpe::ListPair lists = build_lists(node, mode);

  // Enumerate all known standard ids and keep those the list accepts;
  // exact ids in the car's map are the only ones ever used.
  static const std::uint32_t known[] = {
      msg::kModeChange,   msg::kFailSafeTrigger, msg::kEmergencyCall,
      msg::kEcuCommand,   msg::kEcuStatus,       msg::kEpsCommand,
      msg::kEpsStatus,    msg::kEngineCommand,   msg::kEngineStatus,
      msg::kLockCommand,  msg::kLockStatus,      msg::kAlarmCommand,
      msg::kAlarmStatus,  msg::kModemCommand,    msg::kModemStatus,
      msg::kIviCommand,   msg::kIviStatus,       msg::kSensorAccel,
      msg::kSensorBrake,  msg::kSensorSpeed,     msg::kSensorProximity,
      msg::kAirbagEvent,  msg::kTrackingReport,  msg::kFirmwareUpdate,
      msg::kDiagRequest,  msg::kDiagResponse,
  };
  for (const auto id : known) {
    if (lists.read.contains(can::CanId::standard(id))) {
      filters.push_back(can::AcceptanceFilter::exact(id));
    }
  }
  return filters;
}

// -- free-function shims --------------------------------------------------

bool node_may(const std::string& node, const std::string& asset_id,
              core::AccessType access, CarMode mode,
              const core::PolicySet& policy) {
  BindingCompiler compiler(policy);
  return compiler.node_may(node, asset_id, access, mode);
}

bool anyone_may_write(const std::string& asset_id, CarMode mode,
                      const core::PolicySet& policy) {
  BindingCompiler compiler(policy);
  return compiler.anyone_may_write(asset_id, mode);
}

hpe::ListPair build_lists(const std::string& node, CarMode mode,
                          const core::PolicySet& policy,
                          const BindingOptions& options) {
  BindingCompiler compiler(policy, options);
  return compiler.build_lists(node, mode);
}

hpe::HpeConfig build_hpe_config(const std::string& node,
                                const core::PolicySet& policy,
                                const BindingOptions& options) {
  BindingCompiler compiler(policy, options);
  return compiler.build_hpe_config(node);
}

std::vector<can::AcceptanceFilter> build_rx_filters(
    const std::string& node, CarMode mode, const core::PolicySet& policy) {
  BindingCompiler compiler(policy);
  return compiler.build_rx_filters(node, mode);
}

}  // namespace psme::car
