#include "car/ids.h"

namespace psme::car {

const std::vector<AssetBinding>& asset_bindings() {
  static const std::vector<AssetBinding> bindings = {
      {asset::kEvEcu, "ecu", {msg::kEcuCommand}, {msg::kEcuStatus}},
      {asset::kEps, "eps", {msg::kEpsCommand}, {msg::kEpsStatus}},
      {asset::kEngine, "engine", {msg::kEngineCommand}, {msg::kEngineStatus}},
      {asset::kConnectivity,
       "connectivity",
       {msg::kModemCommand, msg::kEmergencyCall, msg::kFirmwareUpdate},
       {msg::kModemStatus, msg::kTrackingReport}},
      {asset::kInfotainment, "infotainment", {msg::kIviCommand}, {msg::kIviStatus}},
      {asset::kDoorLocks, "doors", {msg::kLockCommand}, {msg::kLockStatus}},
      {asset::kSafetyCritical,
       "safety",
       {msg::kAlarmCommand},
       {msg::kAlarmStatus, msg::kAirbagEvent, msg::kFailSafeTrigger}},
      {asset::kSensors,
       "sensors",
       {},
       {msg::kSensorAccel, msg::kSensorBrake, msg::kSensorSpeed,
        msg::kSensorProximity}},
  };
  return bindings;
}

const std::vector<NodeBinding>& node_bindings() {
  static const std::vector<NodeBinding> bindings = {
      {"ecu", {entry::kEvEcu}},
      {"eps", {entry::kEps}},
      {"engine", {entry::kEngine}},
      {"sensors", {entry::kSensors}},
      {"doors", {entry::kDoorLocks, entry::kManualOpen}},
      {"safety", {entry::kSafetyCritical, entry::kEmergency, entry::kAirbags}},
      {"connectivity", {entry::kConnectivity}},
      {"infotainment", {entry::kInfotainment, entry::kMediaBrowser}},
  };
  return bindings;
}

const AssetBinding* find_asset_binding(const std::string& asset_id) {
  for (const auto& b : asset_bindings()) {
    if (b.asset_id == asset_id) return &b;
  }
  return nullptr;
}

std::vector<std::string> entry_points_of(const std::string& node) {
  for (const auto& b : node_bindings()) {
    if (b.node == node) return b.entry_points;
  }
  return {};
}

std::uint8_t diag_address_of(const std::string& node) {
  const auto& bindings = node_bindings();
  for (std::size_t i = 0; i < bindings.size(); ++i) {
    if (bindings[i].node == node) return static_cast<std::uint8_t>(i + 1);
  }
  return 0;
}

}  // namespace psme::car
