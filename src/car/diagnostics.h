// psme::car — remote diagnostics over CAN (UDS-flavoured).
//
// Table I's second car mode exists for "maintenance by manufacturer or
// authorised engineer". This module gives that mode substance: a compact
// diagnostic protocol carried in kDiagRequest/kDiagResponse frames,
// mode-gated twice — by the policy binding (only connectivity may emit
// requests, and only in remote-diagnostic mode) and by each responder
// (requests outside the mode are ignored). Sensitive services additionally
// require a seed/key security-access handshake, mirroring UDS 0x27.
//
// Frame layout (4 data bytes):
//   request : [target, service, d0, d1]
//   response: [target, service+0x40, d0, d1]      positive
//             [target, 0x7F, service, nrc]        negative
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "can/frame.h"
#include "sim/rng.h"

namespace psme::car::diag {

// Services (UDS ids where they exist).
inline constexpr std::uint8_t kEcuReset = 0x11;
inline constexpr std::uint8_t kReadDataById = 0x22;
inline constexpr std::uint8_t kSecurityAccess = 0x27;
inline constexpr std::uint8_t kWriteDataById = 0x2E;
inline constexpr std::uint8_t kNegativeResponse = 0x7F;

// Negative response codes.
inline constexpr std::uint8_t kNrcServiceNotSupported = 0x11;
inline constexpr std::uint8_t kNrcRequestOutOfRange = 0x31;
inline constexpr std::uint8_t kNrcSecurityAccessDenied = 0x33;
inline constexpr std::uint8_t kNrcInvalidKey = 0x35;

// Data identifiers readable/writable via 0x22/0x2E.
inline constexpr std::uint8_t kDidActive = 0x01;
inline constexpr std::uint8_t kDidSetpoint = 0x02;

// Security-access sub-functions.
inline constexpr std::uint8_t kSubRequestSeed = 0x01;
inline constexpr std::uint8_t kSubSendKey = 0x02;

/// The (deliberately simple, documented-as-simulation) key derivation:
/// real deployments use a challenge-response with a shared secret.
[[nodiscard]] constexpr std::uint8_t key_from_seed(std::uint8_t seed) noexcept {
  return static_cast<std::uint8_t>(seed ^ 0xA5);
}

/// Builds a diagnostic request frame.
[[nodiscard]] can::Frame make_request(std::uint8_t target, std::uint8_t service,
                                      std::uint8_t d0 = 0, std::uint8_t d1 = 0);

/// A parsed diagnostic response.
struct Response {
  std::uint8_t target = 0;
  std::uint8_t service = 0;  // original service id
  bool negative = false;
  std::uint8_t d0 = 0;       // payload (positive) / echoed service (negative)
  std::uint8_t d1 = 0;       // payload (positive) / NRC (negative)

  [[nodiscard]] std::uint8_t nrc() const noexcept { return d1; }
};

/// Parses a kDiagResponse frame; nullopt when the frame is not one.
[[nodiscard]] std::optional<Response> parse_response(const can::Frame& frame);

/// Per-node diagnostic service state machine. The owning node supplies
/// read/write/reset behaviour through callbacks; the responder enforces
/// the security-access gate for EcuReset and WriteDataById.
class DiagResponder {
 public:
  using ReadFn = std::function<std::optional<std::uint8_t>(std::uint8_t did)>;
  using WriteFn = std::function<bool(std::uint8_t did, std::uint8_t value)>;
  using ResetFn = std::function<void()>;

  DiagResponder(std::uint8_t address, ReadFn read, WriteFn write, ResetFn reset);

  [[nodiscard]] std::uint8_t address() const noexcept { return address_; }
  [[nodiscard]] bool unlocked() const noexcept { return unlocked_; }

  /// Relocks (e.g. on leaving remote-diagnostic mode).
  void relock() noexcept {
    unlocked_ = false;
    pending_seed_.reset();
  }

  /// Handles a request frame addressed to anyone; returns the response
  /// frame if the request targets this responder, nullopt otherwise.
  [[nodiscard]] std::optional<can::Frame> handle(const can::Frame& request,
                                                 sim::Rng& rng);

 private:
  [[nodiscard]] can::Frame positive(std::uint8_t service, std::uint8_t d0,
                                    std::uint8_t d1) const;
  [[nodiscard]] can::Frame negative(std::uint8_t service, std::uint8_t nrc) const;

  std::uint8_t address_;
  ReadFn read_;
  WriteFn write_;
  ResetFn reset_;
  bool unlocked_ = false;
  std::optional<std::uint8_t> pending_seed_;
};

}  // namespace psme::car::diag
