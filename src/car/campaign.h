// psme::car — fault-tolerant fleet OTA campaigns.
//
// PR 5 built the artefacts (sealed blobs, fingerprint-anchored deltas);
// this module builds the CAMPAIGN: the server-side orchestrator that
// drives a whole fleet from a skewed spread of policy versions onto one
// target, and keeps its promises when the world misbehaves. The paper's
// fleet story (Sec. VI: policies "updated over the air" across the
// deployed fleet) is only credible with the failure half told — so the
// orchestrator is specified against an explicit fault model
// (sim/fault_plan.h) and every recovery path is exercised under
// injection, deterministically, from a seed.
//
// The shape of a campaign:
//
//  * PLANNING. The server holds the policy lineage (each version
//    compiled against a SID-prefix replica of its predecessor, so the
//    whole lineage shares one SID space by construction) and the
//    per-hop deltas between adjacent versions. For a vehicle on base
//    version B it composes the hop chain B -> ... -> target into ONE
//    delta (core::compose_delta_chain) and ships that when it is
//    intact and smaller than the full blob; a broken chain (missing /
//    corrupted hop artefact) or a delta that outweighs the blob falls
//    back to the full target blob. Plans are cached per base version.
//
//  * WAVES. Vehicles roll in waves: a canary slice first, then
//    successively larger cohorts. After each wave an observation
//    window opens: the committed cohort answers the health-probe
//    workload and a monitor::DenyStreakMonitor (reset at window open —
//    see its reset() notes) watches for deny streaks. The wave gate is
//    two-sided: enough of the reachable cohort must have COMMITTED,
//    and enough of the committed cohort must look HEALTHY. A failed
//    gate halts the campaign before the next wave and rolls every
//    committed vehicle back.
//
//  * VEHICLE STATE MACHINE. Each vehicle walks
//        idle -> offered -> downloading -> validating -> committing
//             -> healthy | failed | dark
//    with bounded retries, exponential backoff with seeded jitter
//    (sim::mix3 — deterministic per (campaign seed, vehicle, try)),
//    and a per-stage download timeout. Validation failures on the
//    delta channel eventually switch the vehicle to the full-blob
//    channel (blob_fallback_after). A power loss between validate and
//    commit discards the staged artefact; the vehicle reboots on its
//    old sealed blob — never a half-applied image — and retries.
//
//  * ROLLBACK. FleetBoot refuses version rollbacks by design, so the
//    campaign rolls FORWARD: the rollback artefact is the prior
//    version's CONTENT restamped as target_version + 1, compiled in
//    the lineage SID space, shipped as a delta off the target image
//    (blob fallback as usual). "Roll back" in the report means content
//    rollback, version roll-forward.
//
// Everything is tick-based and seed-deterministic: same lineage, same
// config, same fleet seed, same fault plan -> bit-identical report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "car/fleet_boot.h"
#include "car/fleet_evaluator.h"
#include "car/update_transport.h"
#include "core/policy.h"
#include "core/policy_image.h"
#include "monitor/anomaly.h"

namespace psme::car {

/// Which artefact kind a vehicle is currently being served.
enum class UpdateChannel : std::uint8_t {
  kDelta,  // composed base->target delta
  kBlob,   // full target blob (planned fallback or per-vehicle fallback)
};

[[nodiscard]] std::string_view to_string(UpdateChannel channel) noexcept;

enum class VehicleState : std::uint8_t {
  kIdle,         // not yet offered in any wave
  kOffered,      // update offered; transfer starts at next_attempt_tick
  kDownloading,  // transfer in flight; a stage deadline bounds the wait
  kValidating,   // artefact staged; validation runs next tick
  kCommitting,   // validated; sealed-store commit runs next tick
  kHealthy,      // committed and live on the objective version
  kFailed,       // retry budget exhausted (campaign may retry next wave)
  kDark,         // unreachable; excluded from gates and convergence
};

[[nodiscard]] std::string_view to_string(VehicleState state) noexcept;

/// One simulated vehicle, deliberately lightweight: per-version images
/// and sealed blobs are shared across the fleet (shared_ptr), so a
/// 10^5..10^6-vehicle fleet costs a few hundred bytes per vehicle. The
/// sealed_blob is the vehicle's power-loss-durable store: whatever it
/// points at is what the vehicle boots from after a crash, and the
/// campaign only ever replaces it in the commit step (atomic in the
/// model; FleetBoot's strong guarantee in the real boot path).
struct CampaignVehicle {
  std::uint32_t id = 0;
  std::uint64_t version = 0;
  std::uint64_t fingerprint = 0;
  std::shared_ptr<const std::vector<std::byte>> sealed_blob;

  VehicleState state = VehicleState::kIdle;
  UpdateChannel channel = UpdateChannel::kDelta;
  UpdateResult last_result = UpdateResult::kOk;

  /// Lifetime transfer counter — the fault-stream key. NEVER reset:
  /// replaying an attempt number would replay its fault decision.
  std::uint32_t attempts = 0;
  /// Tries spent toward the current objective (bounded by max_tries).
  std::uint32_t tries = 0;
  /// Delta-channel validation failures (drives the blob fallback).
  std::uint32_t delta_failures = 0;
  std::uint32_t power_losses = 0;

  std::uint64_t next_attempt_tick = 0;
  std::uint64_t stage_deadline = 0;
  std::vector<std::byte> staged;  // downloaded artefact awaiting validation
};

struct CampaignConfig {
  // -- waves -------------------------------------------------------------
  /// Fraction of eligible vehicles in the canary wave (at least 1).
  double canary_fraction = 0.01;
  /// Cumulative coverage fractions of the follow-on waves (the last is
  /// clamped to 1.0 so every campaign ends with full coverage).
  std::vector<double> wave_fractions = {0.10, 0.50, 1.0};
  /// Ticks a wave may run before undelivered vehicles are failed out.
  std::uint64_t wave_timeout_ticks = 4096;

  // -- retries / backoff / timeouts -------------------------------------
  /// Transfer tries per vehicle per objective before kFailed.
  std::uint32_t max_tries = 6;
  /// Exponential backoff: min(base << (try-1), cap) + jitter ticks,
  /// jitter uniform in [0, jitter) from sim::mix3(seed, vehicle, try).
  std::uint64_t backoff_base_ticks = 2;
  std::uint64_t backoff_cap_ticks = 64;
  std::uint64_t backoff_jitter_ticks = 4;
  /// Ticks a vehicle waits in kDownloading before declaring the
  /// transfer lost (drops and stalls are discovered only by this).
  std::uint64_t download_timeout_ticks = 8;
  /// Delta-channel validation failures before the vehicle switches to
  /// the full-blob channel for its remaining tries.
  std::uint32_t blob_fallback_after = 2;

  // -- health gate -------------------------------------------------------
  /// Per-vehicle probe workload for the observation window; empty uses
  /// default_fleet_checks().
  std::vector<FleetCheck> health_probe;
  /// Sweeps of the probe fed to the gate monitor after each wave.
  std::uint64_t health_ticks = 4;
  monitor::DenyStreakOptions streak{};
  /// When true (default), streak.deny_threshold is recomputed per
  /// campaign as (probe denials of the PREDECESSOR version) + 1 — the
  /// gate then flags vehicles denying MORE than the last known-good
  /// policy did, instead of alerting on the workload's baseline noise.
  bool auto_deny_threshold = true;
  double min_healthy_fraction = 0.95;
  /// Gate floor on committed / reachable (dark vehicles excluded).
  double min_commit_fraction = 0.90;

  /// Seed of the retry-jitter stream (independent of the fault plan's).
  std::uint64_t seed = 0x636172756F7461ULL;
};

enum class CampaignStatus : std::uint8_t {
  kConverged,  // every reachable eligible vehicle healthy on target
  kHalted,     // a wave gate failed; committed cohort rolled back
  kStalled,    // waves exhausted with reachable vehicles not on target
};

[[nodiscard]] std::string_view to_string(CampaignStatus status) noexcept;

struct WaveStats {
  std::size_t wave = 0;  // 0 = canary
  std::size_t size = 0;
  std::size_t committed = 0;
  std::size_t failed = 0;
  std::size_t dark = 0;
  std::uint64_t retries = 0;
  std::uint64_t ticks = 0;  // ticks this wave ran before its gate
  double commit_fraction = 1.0;
  double healthy_fraction = 1.0;
  bool gate_passed = true;
};

struct CampaignReport {
  CampaignStatus status = CampaignStatus::kConverged;
  std::uint64_t target_version = 0;
  std::uint64_t target_fingerprint = 0;
  std::vector<WaveStats> waves;

  std::uint64_t ticks = 0;
  std::uint64_t retries = 0;
  std::uint64_t power_loss_reboots = 0;
  /// Vehicles that switched delta -> blob after repeated validation
  /// failures (per-vehicle fallback, not the planner's).
  std::uint64_t blob_fallbacks = 0;

  // Bytes leaving the server, per channel (every send counts, including
  // ones the fault plan destroys — that is what the radio link carried).
  std::uint64_t delta_bytes_shipped = 0;
  std::uint64_t blob_bytes_shipped = 0;
  /// What shipping every eligible vehicle the full blob once would have
  /// cost — the naive-plan baseline the bench compares against.
  std::uint64_t full_blob_bytes_baseline = 0;

  // Final fleet census.
  std::size_t healthy = 0;
  std::size_t failed = 0;
  std::size_t dark = 0;
  std::size_t untouched = 0;  // already on target before the campaign

  /// Post-campaign audit: vehicles whose sealed blob fails probe or
  /// disagrees with their recorded fingerprint, or whose fingerprint is
  /// not a lineage (or rollback) fingerprint. The acceptance invariant
  /// is ZERO at any fault rate — injected damage may delay a vehicle,
  /// never corrupt its store.
  std::size_t corrupt_images = 0;

  bool rolled_back = false;
  std::size_t rolled_back_vehicles = 0;
  /// Version the rollback artefact was stamped with (target + 1; the
  /// content is the predecessor policy — see the header comment).
  std::uint64_t rollback_version = 0;
  std::uint64_t rollback_fingerprint = 0;
};

/// The OEM-side campaign orchestrator: owns the policy lineage, plans
/// per-vehicle update paths, and drives a fleet through waves over an
/// UpdateTransport.
class CampaignServer {
 public:
  struct Artefact {
    UpdateChannel channel = UpdateChannel::kBlob;
    std::shared_ptr<const std::vector<std::byte>> bytes;
  };

  /// Takes the policy lineage in release order. Versions must be
  /// strictly increasing and the lineage non-empty (throws
  /// std::invalid_argument). Each set is compiled against a SID-prefix
  /// replica of its predecessor's image — the construction that makes
  /// adjacent deltas (and their compositions) valid fleet-wide — and
  /// the per-hop deltas and per-version sealed blobs are built up
  /// front.
  explicit CampaignServer(std::vector<core::PolicySet> lineage,
                          CampaignConfig config = {});

  // -- lineage access ----------------------------------------------------
  [[nodiscard]] std::size_t lineage_size() const noexcept {
    return images_.size();
  }
  [[nodiscard]] const core::CompiledPolicyImage& image_at(std::size_t i) const {
    return *images_.at(i);
  }
  [[nodiscard]] const core::CompiledPolicyImage& target_image() const {
    return *images_.back();
  }
  [[nodiscard]] std::shared_ptr<const std::vector<std::byte>> blob_at(
      std::size_t i) const {
    return blobs_.at(i);
  }
  [[nodiscard]] const CampaignConfig& config() const noexcept {
    return config_;
  }

  /// The update artefact for a vehicle currently on `base_version`: the
  /// composed delta chain when intact and smaller than the blob, the
  /// full target blob otherwise. Cached per base version.
  [[nodiscard]] Artefact plan_for(std::uint64_t base_version);

  /// Times the planner fell back to the full blob (unknown base,
  /// broken chain, or delta outweighed the blob).
  [[nodiscard]] std::uint64_t plan_blob_fallbacks() const noexcept {
    return plan_blob_fallbacks_;
  }

  /// Test/ops hook: damages the stored hop delta version[i] ->
  /// version[i+1] (byte flip), modelling a corrupted or evicted depot
  /// artefact. Chains through this hop then fail to compose and the
  /// planner falls back to the blob. Throws std::out_of_range.
  void break_hop(std::size_t hop);

  /// A fleet with geometric version skew over the last `skew_depth`
  /// pre-target lineage versions: a vehicle sits on the newest
  /// pre-target version with probability ~(1 - skew), one older with
  /// probability ~skew * (1 - skew), and so on (renormalised). Every
  /// vehicle starts kIdle on its version's sealed blob. Deterministic
  /// in `seed`.
  [[nodiscard]] std::vector<CampaignVehicle> make_fleet(
      std::size_t fleet_size, std::uint64_t seed, double skew = 0.5,
      std::size_t skew_depth = 6) const;

  /// Runs the campaign: drives `fleet` onto the lineage target over
  /// `transport`, wave by wave, gating each wave and halting + rolling
  /// back on a failed gate. Mutates the fleet in place (final states,
  /// versions, sealed blobs) and returns the full report.
  [[nodiscard]] CampaignReport run(std::vector<CampaignVehicle>& fleet,
                                   UpdateTransport& transport);

 private:
  /// What a vehicle is being driven to: the artefacts and validation
  /// anchors of one objective (target rollout or rollback).
  struct Objective {
    std::uint64_t version = 0;
    std::uint64_t fingerprint = 0;
    /// Image the delta channel validates against (the vehicle's
    /// running version); null disables the delta channel.
    const core::CompiledPolicyImage* delta_base = nullptr;
    std::shared_ptr<const std::vector<std::byte>> delta;  // may be null
    std::shared_ptr<const std::vector<std::byte>> blob;
    /// Sealed-store bytes a delta-channel commit installs. Safe by the
    /// delta contract: the applied image's blob byte-equals the
    /// target's (pinned in tests/test_policy_delta.cpp).
    std::shared_ptr<const std::vector<std::byte>> commit_store;
    /// Validation memo for CLEAN deliveries: a staged payload
    /// byte-identical to the artefact the server sent validates once
    /// per objective and the verdict is reused fleet-wide (what makes
    /// 10^5-vehicle campaigns cheap). Damaged payloads never match the
    /// clean bytes and validate individually, per vehicle.
    std::optional<UpdateResult> clean_delta_verdict;
    std::optional<UpdateResult> clean_blob_verdict;
  };

  struct Tally {
    std::uint64_t retries = 0;
  };

  void step_vehicle(CampaignVehicle& vehicle, Objective& objective,
                    UpdateTransport& transport, std::uint64_t now,
                    CampaignReport& report, Tally& tally);
  void retry_or_fail(CampaignVehicle& vehicle, std::uint64_t now,
                     Tally& tally);
  [[nodiscard]] UpdateResult validate_staged(const CampaignVehicle& vehicle,
                                             Objective& objective) const;
  [[nodiscard]] std::uint64_t backoff_ticks(std::uint32_t vehicle,
                                            std::uint32_t tries) const;

  /// Drives `members` of `fleet` to per-version objectives from
  /// `objectives` until all terminal or `deadline`; returns ticks run.
  std::uint64_t drive(std::vector<CampaignVehicle>& fleet,
                      const std::vector<std::uint32_t>& members,
                      std::unordered_map<std::uint64_t, Objective>& objectives,
                      UpdateTransport& transport, std::uint64_t deadline,
                      std::uint64_t& now, CampaignReport& report,
                      Tally& tally);

  [[nodiscard]] Objective objective_for(std::uint64_t base_version);
  [[nodiscard]] std::uint32_t probe_denies(
      const core::CompiledPolicyImage& image) const;
  void run_rollback(std::vector<CampaignVehicle>& fleet,
                    UpdateTransport& transport, std::uint64_t& now,
                    CampaignReport& report);
  void audit_fleet(const std::vector<CampaignVehicle>& fleet,
                   CampaignReport& report) const;

  CampaignConfig config_;
  std::vector<core::PolicySet> lineage_;
  std::vector<std::shared_ptr<const core::CompiledPolicyImage>> images_;
  std::vector<std::shared_ptr<const std::vector<std::byte>>> blobs_;
  /// hop_deltas_[i] takes version[i] to version[i+1].
  std::vector<std::shared_ptr<std::vector<std::byte>>> hop_deltas_;
  std::unordered_map<std::uint64_t, std::size_t> version_index_;
  std::unordered_map<std::uint64_t, Artefact> plan_cache_;
  std::uint64_t plan_blob_fallbacks_ = 0;

  std::vector<FleetCheck> probe_;
  /// Effective gate threshold this campaign (see auto_deny_threshold).
  std::uint32_t gate_deny_threshold_ = 1;

  /// Rollback artefacts, built lazily on first halt.
  std::shared_ptr<const core::CompiledPolicyImage> rollback_image_;
  std::shared_ptr<const std::vector<std::byte>> rollback_blob_;
  std::shared_ptr<const std::vector<std::byte>> rollback_delta_;
};

}  // namespace psme::car
