// psme::car — the connected car's component nodes (paper Fig. 2).
//
// Each class models one CAN node with just enough behaviour to (a) generate
// realistic periodic traffic, (b) carry out its legitimate control duties,
// and (c) expose *hazard counters* that record when a modelled threat
// actually fired (ECU disabled while driving, doors locked during an
// accident, ...). The attack framework measures enforcement regimes by
// reading these counters.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "can/node.h"
#include "car/diagnostics.h"
#include "car/ids.h"
#include "car/modes.h"
#include "sim/event_queue.h"

namespace psme::car {

/// Builds a 2-byte command frame [opcode, arg].
[[nodiscard]] can::Frame command_frame(std::uint32_t id, std::uint8_t opcode,
                                       std::uint8_t arg = 0);

/// Base for all car nodes: tracks the current car mode from the gateway's
/// mode-change broadcast, then forwards frames to on_message().
class CarNode : public can::Node {
 public:
  CarNode(sim::Scheduler& sched, can::Channel& channel, std::string name,
          sim::Trace* trace, std::uint64_t seed);

  [[nodiscard]] CarMode mode() const noexcept { return mode_; }

  /// Activates the node's diagnostic responder under the given address.
  /// Requests are honoured only in remote-diagnostic mode; the security-
  /// access unlock is dropped on every mode change away from it.
  void enable_diagnostics(std::uint8_t address);
  [[nodiscard]] bool diagnostics_enabled() const noexcept {
    return responder_.has_value();
  }
  [[nodiscard]] bool diag_unlocked() const noexcept {
    return responder_.has_value() && responder_->unlocked();
  }

 protected:
  void handle_frame(const can::Frame& frame, sim::SimTime at) final;

  /// Component-specific behaviour.
  virtual void on_message(const can::Frame& frame, sim::SimTime at) = 0;
  virtual void on_mode_change(CarMode mode) { (void)mode; }

  // Diagnostic service hooks (UDS 0x22 / 0x2E / 0x11); default: nothing
  // readable or writable, reset is a no-op.
  virtual std::optional<std::uint8_t> diag_read(std::uint8_t did) {
    (void)did;
    return std::nullopt;
  }
  virtual bool diag_write(std::uint8_t did, std::uint8_t value) {
    (void)did;
    (void)value;
    return false;
  }
  virtual void diag_reset() {}

 private:
  CarMode mode_ = CarMode::kNormal;
  std::optional<diag::DiagResponder> responder_;
};

/// Common shape of ECU/EPS/engine: an actuator with an active flag and a
/// setpoint, commanded via one id and reporting via another.
class ActuatorNode : public CarNode {
 public:
  ActuatorNode(sim::Scheduler& sched, can::Channel& channel, std::string name,
               std::uint32_t command_id, std::uint32_t status_id,
               sim::SimDuration status_period, sim::SimTime first_status,
               sim::Trace* trace, std::uint64_t seed);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] std::uint8_t setpoint() const noexcept { return setpoint_; }

  /// Hazard counter: how often the actuator was disabled by a command.
  [[nodiscard]] std::uint64_t disable_events() const noexcept {
    return disable_events_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

  // Diagnostic services: expose the actuator state (read), setpoint
  // (write, security-gated) and a reset that re-enables the actuator.
  std::optional<std::uint8_t> diag_read(std::uint8_t did) override;
  bool diag_write(std::uint8_t did, std::uint8_t value) override;
  void diag_reset() override;
  /// Hook for subclasses interested in non-command frames.
  virtual void on_other_message(const can::Frame& frame, sim::SimTime at) {
    (void)frame;
    (void)at;
  }
  virtual void broadcast_status();

  std::uint32_t command_id_;
  std::uint32_t status_id_;
  bool active_ = true;
  std::uint8_t setpoint_ = 0;
  std::uint64_t disable_events_ = 0;

 private:
  std::unique_ptr<sim::PeriodicTask> status_task_;
};

/// EV-ECU: propulsion/brake/transmission control. Tracks vehicle speed
/// from the speed sensor and periodically issues engine torque demands.
class EvEcuNode final : public ActuatorNode {
 public:
  EvEcuNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
            std::uint64_t seed);

  [[nodiscard]] std::uint8_t speed() const noexcept { return speed_; }

 protected:
  void on_other_message(const can::Frame& frame, sim::SimTime at) override;
  void broadcast_status() override;

 private:
  std::uint8_t speed_ = 0;
  std::unique_ptr<sim::PeriodicTask> torque_task_;
};

/// Electronic power steering.
class EpsNode final : public ActuatorNode {
 public:
  EpsNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
          std::uint64_t seed);
};

/// Engine management.
class EngineNode final : public ActuatorNode {
 public:
  EngineNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
             std::uint64_t seed);

  [[nodiscard]] std::uint64_t torque_commands() const noexcept {
    return torque_commands_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  std::uint64_t torque_commands_ = 0;
};

/// Accel / brake / speed / proximity sensor cluster.
class SensorNode final : public CarNode {
 public:
  SensorNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
             std::uint64_t seed);

  void set_speed(std::uint8_t mps) noexcept { speed_ = mps; }
  [[nodiscard]] std::uint8_t speed() const noexcept { return speed_; }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  void broadcast();

  std::uint8_t speed_ = 14;  // ~50 km/h default driving speed
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Central locking.
class DoorLockNode final : public CarNode {
 public:
  DoorLockNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
               std::uint64_t seed);

  [[nodiscard]] bool locked() const noexcept { return locked_; }

  /// Direct state hook modelling the physical key (attack scenarios use it
  /// to establish preconditions without bus traffic).
  void set_locked(bool locked) noexcept { locked_ = locked; }

  // Hazard counters (paper threats T13 / T14).
  [[nodiscard]] std::uint64_t unlocks_while_moving() const noexcept {
    return unlocks_while_moving_;
  }
  [[nodiscard]] std::uint64_t locks_during_failsafe() const noexcept {
    return locks_during_failsafe_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  void broadcast_status();

  bool locked_ = false;
  std::uint8_t speed_ = 0;
  std::uint64_t unlocks_while_moving_ = 0;
  std::uint64_t locks_during_failsafe_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Alarm / airbag / fail-safe supervision.
class SafetyCriticalNode final : public CarNode {
 public:
  /// Acceleration magnitude above which a crash is assumed.
  static constexpr std::uint8_t kCrashThreshold = 200;

  SafetyCriticalNode(sim::Scheduler& sched, can::Channel& channel,
                     sim::Trace* trace, std::uint64_t seed);

  [[nodiscard]] bool armed() const noexcept { return armed_; }

  /// Direct state hook modelling the physical key fob.
  void set_armed(bool armed) noexcept { armed_ = armed; }

  /// Hard-wired airbag deployment input (the airbag squib is not a CAN
  /// message; it reaches the safety controller directly). Triggers the
  /// fail-safe sequence immediately.
  void airbag_deployed() { trigger_failsafe(); }

  // Hazard counters (paper threats T15 / T16).
  [[nodiscard]] std::uint64_t failsafe_triggers() const noexcept {
    return failsafe_triggers_;
  }
  [[nodiscard]] std::uint64_t disarm_events() const noexcept {
    return disarm_events_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  void trigger_failsafe();
  void broadcast_status();

  bool armed_ = false;
  std::uint64_t failsafe_triggers_ = 0;
  std::uint64_t disarm_events_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// 3G/4G/WiFi modem: tracking reports, emergency calls, firmware intake.
class ConnectivityNode final : public CarNode {
 public:
  ConnectivityNode(sim::Scheduler& sched, can::Channel& channel,
                   sim::Trace* trace, std::uint64_t seed);

  [[nodiscard]] bool modem_enabled() const noexcept { return modem_enabled_; }
  [[nodiscard]] bool firmware_ok() const noexcept { return firmware_ok_; }

  // Hazard counters (paper threats T07-T10).
  [[nodiscard]] std::uint64_t modem_disables() const noexcept {
    return modem_disables_;
  }
  [[nodiscard]] std::uint64_t firmware_tampers() const noexcept {
    return firmware_tampers_;
  }
  [[nodiscard]] std::uint64_t ecalls_made() const noexcept { return ecalls_made_; }
  [[nodiscard]] std::uint64_t ecalls_failed() const noexcept {
    return ecalls_failed_;
  }
  [[nodiscard]] std::uint64_t tracking_reports() const noexcept {
    return tracking_reports_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  void report_tracking();

  bool modem_enabled_ = true;
  bool firmware_ok_ = true;
  std::uint64_t modem_disables_ = 0;
  std::uint64_t firmware_tampers_ = 0;
  std::uint64_t ecalls_made_ = 0;
  std::uint64_t ecalls_failed_ = 0;
  std::uint64_t tracking_reports_ = 0;
  std::unique_ptr<sim::PeriodicTask> task_;
};

/// Head unit: status display and (attackable) app installation.
class InfotainmentNode final : public CarNode {
 public:
  InfotainmentNode(sim::Scheduler& sched, can::Channel& channel,
                   sim::Trace* trace, std::uint64_t seed);

  [[nodiscard]] std::uint8_t displayed_speed() const noexcept {
    return displayed_speed_;
  }
  [[nodiscard]] bool compromised() const noexcept { return compromised_; }
  [[nodiscard]] std::uint64_t installs() const noexcept { return installs_; }

  /// Hazard counter (paper threat T12): forced display overrides.
  [[nodiscard]] std::uint64_t display_overrides() const noexcept {
    return display_overrides_;
  }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  std::uint8_t displayed_speed_ = 0;
  bool compromised_ = false;
  std::uint64_t installs_ = 0;
  std::uint64_t display_overrides_ = 0;
};

/// Central gateway: owns the car mode and broadcasts changes. Also enters
/// fail-safe autonomously when it observes a fail-safe trigger.
class GatewayNode final : public CarNode {
 public:
  using ModeCallback = std::function<void(CarMode)>;

  GatewayNode(sim::Scheduler& sched, can::Channel& channel, sim::Trace* trace,
              std::uint64_t seed);

  /// Broadcasts the new mode; invokes the callback (used by the vehicle to
  /// reprogram software filters — a step the HPE does not need).
  void change_mode(CarMode new_mode);

  void set_on_change(ModeCallback callback) { on_change_ = std::move(callback); }
  [[nodiscard]] CarMode current_mode() const noexcept { return current_; }

 protected:
  void on_message(const can::Frame& frame, sim::SimTime at) override;

 private:
  CarMode current_ = CarMode::kNormal;
  ModeCallback on_change_;
};

}  // namespace psme::car
