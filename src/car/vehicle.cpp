#include "car/vehicle.h"

namespace psme::car {

std::string_view to_string(Enforcement e) noexcept {
  switch (e) {
    case Enforcement::kNone: return "none";
    case Enforcement::kSoftwareFilter: return "software-filter";
    case Enforcement::kHpe: return "hpe";
  }
  return "?";
}

Vehicle::Vehicle(sim::Scheduler& sched, VehicleConfig config,
                 sim::Trace* trace)
    : sched_(sched),
      config_(config),
      trace_(trace),
      bus_(sched, can::kBitRate500k, trace, config.seed),
      policy_(full_policy(connected_car_threat_model(), config.policy_version)) {
  bus_.set_error_rate(config_.bus_error_rate);
  reset_binding_compiler();

  // The gateway is part of the trusted computing base (it owns the mode);
  // it attaches directly, without a policy shim.
  can::Port& gw_port = bus_.attach("gateway");
  gateway_ = std::make_unique<GatewayNode>(sched_, gw_port, trace_,
                                           config_.seed ^ 0x11);

  std::uint64_t salt = 0x20;
  ecu_ = std::make_unique<EvEcuNode>(sched_, make_channel("ecu"), trace_,
                                     config_.seed ^ salt++);
  eps_ = std::make_unique<EpsNode>(sched_, make_channel("eps"), trace_,
                                   config_.seed ^ salt++);
  engine_ = std::make_unique<EngineNode>(sched_, make_channel("engine"),
                                         trace_, config_.seed ^ salt++);
  sensors_ = std::make_unique<SensorNode>(sched_, make_channel("sensors"),
                                          trace_, config_.seed ^ salt++);
  doors_ = std::make_unique<DoorLockNode>(sched_, make_channel("doors"),
                                          trace_, config_.seed ^ salt++);
  safety_ = std::make_unique<SafetyCriticalNode>(
      sched_, make_channel("safety"), trace_, config_.seed ^ salt++);
  connectivity_ = std::make_unique<ConnectivityNode>(
      sched_, make_channel("connectivity"), trace_, config_.seed ^ salt++);
  infotainment_ = std::make_unique<InfotainmentNode>(
      sched_, make_channel("infotainment"), trace_, config_.seed ^ salt++);

  // Every component node answers workshop diagnostics under its address.
  for (const auto& name : node_names()) {
    node(name)->enable_diagnostics(diag_address_of(name));
  }

  if (config_.enforcement == Enforcement::kHpe && config_.lock_hpes) {
    for (auto& [name, station] : stations_) {
      if (station.engine) station.engine->lock();
    }
  }

  if (config_.enforcement == Enforcement::kSoftwareFilter) {
    install_software_filters(config_.initial_mode);
    // Software filters are mode-dependent; node firmware must reprogram
    // them whenever the gateway announces a mode change. (The HPE needs no
    // such hook — it snoops the mode frame itself.)
    gateway_->set_on_change(
        [this](CarMode mode) { install_software_filters(mode); });
  }

  if (config_.initial_mode != CarMode::kNormal) {
    gateway_->change_mode(config_.initial_mode);
  }
}

BindingOptions Vehicle::binding_options() const noexcept {
  BindingOptions options;
  options.content_rules = config_.hpe_content_rules;
  options.writer_existence_gate = config_.hpe_writer_gate;
  options.mode_conditional = config_.hpe_mode_conditional;
  return options;
}

void Vehicle::reset_binding_compiler() {
  binding_ = std::make_unique<BindingCompiler>(
      policy_, config_.enforcement == Enforcement::kSoftwareFilter
                   ? BindingOptions{}
                   : binding_options());
}

can::Channel& Vehicle::make_channel(const std::string& name) {
  Station& station = stations_[name];
  station.port = &bus_.attach(name);
  if (config_.enforcement == Enforcement::kHpe) {
    station.engine = std::make_unique<hpe::HardwarePolicyEngine>(
        *station.port, binding_->build_hpe_config(name), name, trace_);
    // The engine powers up in the configured initial mode.
    station.engine->set_mode(static_cast<std::uint8_t>(config_.initial_mode));
    return *station.engine;
  }
  return *station.port;
}

void Vehicle::install_software_filters(CarMode mode) {
  for (const auto& name : node_names()) {
    CarNode* n = node(name);
    if (n != nullptr) {
      n->controller().set_filters(binding_->build_rx_filters(name, mode));
    }
  }
  gateway_->controller().set_filters({
      can::AcceptanceFilter::exact(msg::kFailSafeTrigger),
      can::AcceptanceFilter::exact(msg::kModeChange),
  });
}

CarNode* Vehicle::node(const std::string& name) noexcept {
  if (name == "ecu") return ecu_.get();
  if (name == "eps") return eps_.get();
  if (name == "engine") return engine_.get();
  if (name == "sensors") return sensors_.get();
  if (name == "doors") return doors_.get();
  if (name == "safety") return safety_.get();
  if (name == "connectivity") return connectivity_.get();
  if (name == "infotainment") return infotainment_.get();
  return nullptr;
}

std::vector<std::string> Vehicle::node_names() const {
  return {"ecu",    "eps",    "engine",       "sensors",
          "doors",  "safety", "connectivity", "infotainment"};
}

hpe::HardwarePolicyEngine* Vehicle::hpe(const std::string& name) noexcept {
  const auto it = stations_.find(name);
  return it == stations_.end() ? nullptr : it->second.engine.get();
}

can::Port& Vehicle::attach_attacker(const std::string& name) {
  return bus_.attach(name);
}

void Vehicle::set_mode(CarMode mode) { gateway_->change_mode(mode); }

bool Vehicle::apply_policy_update(const core::PolicyBundle& bundle,
                                  const core::PolicySigner& verifier) {
  switch (config_.enforcement) {
    case Enforcement::kHpe: {
      // One compiler for the whole fleet of per-node configs; its memo
      // carries every shared policy verdict across the eight nodes.
      BindingCompiler update_binding(bundle.set, binding_options());
      bool all_ok = true;
      for (auto& [name, station] : stations_) {
        if (!station.engine) continue;
        const bool ok = station.engine->apply_update(
            bundle, verifier, update_binding.build_hpe_config(name));
        all_ok = all_ok && ok;
      }
      if (all_ok) {
        policy_ = bundle.set;
        reset_binding_compiler();
      }
      return all_ok;
    }
    case Enforcement::kSoftwareFilter: {
      if (!verifier.verify(bundle.set, bundle.tag) ||
          bundle.version() <= policy_.version()) {
        return false;
      }
      policy_ = bundle.set;
      reset_binding_compiler();
      install_software_filters(mode());
      return true;
    }
    case Enforcement::kNone: {
      if (!verifier.verify(bundle.set, bundle.tag) ||
          bundle.version() <= policy_.version()) {
        return false;
      }
      policy_ = bundle.set;  // recorded, but nothing enforces it
      reset_binding_compiler();
      return true;
    }
  }
  return false;
}

std::uint64_t Vehicle::total_hpe_blocks() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [name, station] : stations_) {
    if (station.engine) total += station.engine->stats().total_blocked();
  }
  return total;
}

}  // namespace psme::car
