// psme::car — the paper's Table I as data and as a threat model.
//
// Table I ("Threat modelling of a connected car application use case") is
// the paper's evaluation artefact: sixteen threats against seven critical
// assets, each with entry points, STRIDE classification, a DREAD 5-tuple
// with its average, and the derived R/W policy. table1_rows() transcribes
// the printed values verbatim (so benches can diff against the paper);
// connected_car_threat_model() builds the same content as a validated
// psme::threat::ThreatModel.
//
// The printed table's per-mode tick-marks did not survive the paper's PDF
// text extraction; the mode assignments here reconstruct them from each
// threat's semantics and are recorded as an assumption in DESIGN.md.
#pragma once

#include <string>
#include <vector>

#include "car/modes.h"
#include "threat/threat_model.h"

namespace psme::car {

/// One printed row of Table I, exactly as in the paper.
struct Table1Row {
  std::string threat_id;     // our stable id, T01..T16
  std::string asset;         // asset id (ids.h asset::*)
  std::vector<std::string> entry_points;  // entry ids (ids.h entry::*)
  std::string threat;        // "Potential Threats" column text
  std::string stride;        // compact letters, e.g. "STD"
  std::string dread;         // paper notation "8,5,4,6,4 (5.4)"
  std::string policy;        // "R", "W" or "RW"
  std::vector<CarMode> modes;  // reconstructed mode applicability
};

/// The sixteen rows in paper order.
[[nodiscard]] const std::vector<Table1Row>& table1_rows();

/// Builds the full connected-car threat model (assets, entry points,
/// modes, and all sixteen threats) through ThreatModelBuilder, which
/// validates every reference.
[[nodiscard]] threat::ThreatModel connected_car_threat_model();

}  // namespace psme::car
