#include "car/modes.h"

#include <stdexcept>
#include <string>

namespace psme::car {

std::string_view to_string(CarMode mode) noexcept {
  switch (mode) {
    case CarMode::kNormal: return "normal";
    case CarMode::kRemoteDiagnostic: return "remote-diagnostic";
    case CarMode::kFailSafe: return "fail-safe";
  }
  return "?";
}

threat::ModeId mode_id(CarMode mode) {
  return threat::ModeId{std::string(to_string(mode))};
}

CarMode mode_from_id(const threat::ModeId& id) {
  for (CarMode m : kAllModes) {
    if (id.value == to_string(m)) return m;
  }
  throw std::invalid_argument("mode_from_id: unknown mode '" + id.value + "'");
}

}  // namespace psme::car
