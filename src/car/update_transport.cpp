#include "car/update_transport.h"

#include <algorithm>

namespace psme::car {

Delivery PerfectTransport::send(std::uint32_t vehicle, std::uint32_t attempt,
                                std::span<const std::byte> artefact) {
  (void)vehicle;
  (void)attempt;
  Delivery delivery;
  delivery.payload.assign(artefact.begin(), artefact.end());
  return delivery;
}

Delivery FaultyTransport::send(std::uint32_t vehicle, std::uint32_t attempt,
                               std::span<const std::byte> artefact) {
  ++counters_.sent;
  counters_.bytes_sent += artefact.size();

  Delivery delivery;
  if (dark_.contains(vehicle)) {
    delivery.status = DeliveryStatus::kDark;
    delivery.injected = sim::FaultKind::kDark;
    ++counters_.dark;
    return delivery;
  }

  const sim::FaultDecision fault = plan_.transport_fault(vehicle, attempt);
  delivery.injected = fault.kind;
  switch (fault.kind) {
    case sim::FaultKind::kDrop:
      delivery.status = DeliveryStatus::kLost;
      ++counters_.dropped;
      return delivery;
    case sim::FaultKind::kStall:
      delivery.status = DeliveryStatus::kLost;
      ++counters_.stalled;
      return delivery;
    case sim::FaultKind::kDark:
      dark_.insert(vehicle);
      delivery.status = DeliveryStatus::kDark;
      ++counters_.dark;
      return delivery;
    case sim::FaultKind::kTruncate: {
      // Short delivery: at least one byte missing, possibly all of them.
      const std::size_t keep = std::min(
          artefact.size() - 1,
          static_cast<std::size_t>(fault.at *
                                   static_cast<double>(artefact.size())));
      delivery.payload.assign(artefact.begin(),
                              artefact.begin() + static_cast<long>(keep));
      ++counters_.truncated;
      return delivery;
    }
    case sim::FaultKind::kCorrupt: {
      delivery.payload.assign(artefact.begin(), artefact.end());
      if (!delivery.payload.empty()) {
        const std::size_t at = std::min(
            delivery.payload.size() - 1,
            static_cast<std::size_t>(
                fault.at * static_cast<double>(delivery.payload.size())));
        delivery.payload[at] ^= std::byte{fault.flip};
      }
      ++counters_.corrupted;
      return delivery;
    }
    case sim::FaultKind::kPowerLoss:  // not a transport fault; unreachable
    case sim::FaultKind::kNone:
      break;
  }
  delivery.payload.assign(artefact.begin(), artefact.end());
  ++counters_.delivered_clean;
  return delivery;
}

}  // namespace psme::car
