// psme::car — assembling the connected car (paper Fig. 2 topology).
//
// A Vehicle wires all component nodes to one shared CAN bus and installs
// the chosen enforcement regime:
//
//  kNone           — the de-facto state of legacy vehicles: broadcast bus,
//                    no policing (the paper's problem statement);
//  kSoftwareFilter — each controller's programmable acceptance filter is
//                    configured from the policy set (Fig. 3's "software
//                    based filter"); mode changes require the node firmware
//                    to reprogram filters, and a firmware compromise can
//                    simply rewrite them;
//  kHpe            — a HardwarePolicyEngine wraps every node's bus port
//                    (Fig. 4), with per-mode approved lists, autonomous
//                    mode snooping, and lockable configuration.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "can/bus.h"
#include "car/base_policy.h"
#include "car/components.h"
#include "car/policy_binding.h"
#include "car/table1.h"
#include "core/update.h"
#include "hpe/hpe.h"

namespace psme::car {

enum class Enforcement : std::uint8_t {
  kNone,
  kSoftwareFilter,
  kHpe,
};

[[nodiscard]] std::string_view to_string(Enforcement e) noexcept;

struct VehicleConfig {
  Enforcement enforcement = Enforcement::kNone;
  CarMode initial_mode = CarMode::kNormal;
  double bus_error_rate = 0.0;
  /// Lock every HPE after provisioning (tamper resistance on).
  bool lock_hpes = true;
  /// Enable the fine-grained payload-rule extension on the HPEs.
  bool hpe_content_rules = false;
  /// Ablation switches (normally left on; see BindingOptions).
  bool hpe_writer_gate = true;
  bool hpe_mode_conditional = true;
  std::uint64_t seed = 42;
  std::uint64_t policy_version = 1;
};

class Vehicle {
 public:
  Vehicle(sim::Scheduler& sched, VehicleConfig config = {},
          sim::Trace* trace = nullptr);

  Vehicle(const Vehicle&) = delete;
  Vehicle& operator=(const Vehicle&) = delete;

  // -- topology ----------------------------------------------------------
  [[nodiscard]] can::Bus& bus() noexcept { return bus_; }
  [[nodiscard]] GatewayNode& gateway() noexcept { return *gateway_; }
  [[nodiscard]] EvEcuNode& ecu() noexcept { return *ecu_; }
  [[nodiscard]] EpsNode& eps() noexcept { return *eps_; }
  [[nodiscard]] EngineNode& engine() noexcept { return *engine_; }
  [[nodiscard]] SensorNode& sensors() noexcept { return *sensors_; }
  [[nodiscard]] DoorLockNode& doors() noexcept { return *doors_; }
  [[nodiscard]] SafetyCriticalNode& safety() noexcept { return *safety_; }
  [[nodiscard]] ConnectivityNode& connectivity() noexcept { return *connectivity_; }
  [[nodiscard]] InfotainmentNode& infotainment() noexcept { return *infotainment_; }

  /// Component node by name ("ecu", "doors", ...); nullptr when unknown.
  [[nodiscard]] CarNode* node(const std::string& name) noexcept;

  /// All component node names (excluding the gateway).
  [[nodiscard]] std::vector<std::string> node_names() const;

  /// The HPE guarding a node, or nullptr (wrong regime / unknown node).
  [[nodiscard]] hpe::HardwarePolicyEngine* hpe(const std::string& name) noexcept;

  /// Attaches a raw, unpoliced port for an *outside* attacker node (a
  /// malicious device introduced into the vehicle network).
  [[nodiscard]] can::Port& attach_attacker(const std::string& name);

  // -- modes and policy ---------------------------------------------------
  void set_mode(CarMode mode);
  [[nodiscard]] CarMode mode() const noexcept { return gateway_->current_mode(); }

  [[nodiscard]] const core::PolicySet& policy() const noexcept { return policy_; }
  [[nodiscard]] Enforcement enforcement() const noexcept {
    return config_.enforcement;
  }

  /// The vehicle's shared memoising binding compiler — its stats() show
  /// how many unique policy questions one vehicle compilation actually
  /// asks (examples/connected_car.cpp surfaces them).
  [[nodiscard]] const BindingCompiler& binding() const noexcept {
    return *binding_;
  }

  /// Applies an OTA policy update to every enforcement point. With the HPE
  /// regime this goes through each engine's authenticated update path;
  /// with software filters the vehicle firmware verifies and reprograms.
  /// Returns true when the update was accepted everywhere.
  bool apply_policy_update(const core::PolicyBundle& bundle,
                           const core::PolicySigner& verifier);

  /// Sum of frames blocked by all HPEs (0 under other regimes).
  [[nodiscard]] std::uint64_t total_hpe_blocks() const noexcept;

 private:
  struct Station {
    can::Port* port = nullptr;
    std::unique_ptr<hpe::HardwarePolicyEngine> engine;  // kHpe regime only
  };

  /// Prepares the channel (port or HPE shim) a node should attach to.
  can::Channel& make_channel(const std::string& name);

  [[nodiscard]] BindingOptions binding_options() const noexcept;

  /// Rebuilds binding_ against the current policy_ (after construction or
  /// a policy update). Software filters are bound with default options —
  /// the ablation switches only shape HPE configurations.
  void reset_binding_compiler();

  void install_software_filters(CarMode mode);

  sim::Scheduler& sched_;
  VehicleConfig config_;
  sim::Trace* trace_;
  can::Bus bus_;
  core::PolicySet policy_;
  /// Shared memoising compiler from policy_ to approved lists/filters;
  /// one instance serves every node (and every mode) of this vehicle.
  std::unique_ptr<BindingCompiler> binding_;
  std::map<std::string, Station> stations_;

  std::unique_ptr<GatewayNode> gateway_;
  std::unique_ptr<EvEcuNode> ecu_;
  std::unique_ptr<EpsNode> eps_;
  std::unique_ptr<EngineNode> engine_;
  std::unique_ptr<SensorNode> sensors_;
  std::unique_ptr<DoorLockNode> doors_;
  std::unique_ptr<SafetyCriticalNode> safety_;
  std::unique_ptr<ConnectivityNode> connectivity_;
  std::unique_ptr<InfotainmentNode> infotainment_;
};

}  // namespace psme::car
