#include "car/fleet_evaluator.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "car/ids.h"

namespace psme::car {

/// The persistent pool: k-1 threads parked on `work_cv` between sweeps.
/// The owner publishes a sweep by writing the job fields and bumping
/// `epoch` under `m`, then notifying; each worker runs its shard and the
/// last one to finish signals `done_cv`. `stop` parks the pool for good
/// (destructor / thread-count change). The mutex is held only around the
/// hand-offs — the sweeps themselves run lock-free on disjoint state.
struct FleetEvaluator::Pool {
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::uint64_t epoch = 0;     // bumped once per sweep
  std::size_t pending = 0;     // pool workers still in the current sweep
  bool stop = false;
  bool capture = false;        // job: sink mode?
  std::size_t fleet = 0;       // job: fleet size to shard
  std::size_t k = 0;           // job: total worker count (incl. caller)
  std::vector<std::thread> threads;  // workers 1..k-1
};

std::vector<FleetCheck> default_fleet_checks() {
  // Every question the binding layer asks when policing one vehicle:
  // each hosted entry point against each asset, read and write. The
  // deterministic (node-binding, asset-binding) order matters — fleet
  // sweeps must replay identically across runs (DESIGN.md §8).
  std::vector<FleetCheck> checks;
  for (const NodeBinding& node : node_bindings()) {
    for (const std::string& entry_point : node.entry_points) {
      for (const AssetBinding& asset : asset_bindings()) {
        for (const core::AccessType access :
             {core::AccessType::kRead, core::AccessType::kWrite}) {
          checks.push_back(FleetCheck{entry_point, asset.asset_id, access});
        }
      }
    }
  }
  return checks;
}

FleetEvaluator::FleetEvaluator(const core::CompiledPolicyImage& image,
                               std::vector<FleetCheck> checks,
                               FleetEvaluatorOptions options)
    : image_(image),
      checks_(std::move(checks)),
      batch_chunk_(options.batch_chunk) {
  if (options.fleet_size == 0) {
    throw std::invalid_argument("FleetEvaluator: empty fleet");
  }
  if (checks_.empty()) {
    throw std::invalid_argument("FleetEvaluator: empty per-vehicle workload");
  }
  if (batch_chunk_ == 0) {
    throw std::invalid_argument("FleetEvaluator: zero batch chunk");
  }

  // The once-per-fleet string boundary: every entity and mode name is
  // resolved into the image's shared SID space here; ticks never touch a
  // string again. Interning (rather than find) gives entities the policy
  // never names a stable SID too, so the memo of SIDs is total.
  mac::SidTable& sids = *image_.sid_table();
  resolved_.reserve(checks_.size());
  for (const FleetCheck& check : checks_) {
    core::SidRequest request;
    request.subject = sids.intern(check.subject);
    request.object = sids.intern(check.object);
    request.access = check.access;
    request.mode = mac::kNullSid;  // filled per vehicle at tick time
    resolved_.push_back(request);
  }
  for (CarMode mode : kAllModes) {
    const auto slot = static_cast<std::size_t>(mode);
    mode_ids_[slot] = mode_id(mode);
    mode_sids_[slot] = image_.mode_sid(mode_ids_[slot]);
  }

  vehicle_modes_.assign(options.fleet_size,
                        static_cast<std::uint8_t>(options.initial_mode));
  vehicle_denied_.assign(options.fleet_size, 0);
  batch_.reserve(batch_chunk_);
  decisions_.reserve(batch_chunk_);
  flags_.reserve(batch_chunk_);
}

FleetEvaluator::~FleetEvaluator() { stop_pool(); }

void FleetEvaluator::set_mode(std::size_t vehicle, CarMode mode) {
  vehicle_modes_.at(vehicle) = static_cast<std::uint8_t>(mode);
}

CarMode FleetEvaluator::mode(std::size_t vehicle) const {
  return static_cast<CarMode>(vehicle_modes_.at(vehicle));
}

void FleetEvaluator::flush(FleetTickStats& stats, const ChunkSink& sink) {
  if (batch_.empty()) return;
  const std::size_t checks = checks_.size();
  if (sink) {
    decisions_.resize(batch_.size());
    image_.evaluate_batch(batch_, decisions_);
    flags_.resize(batch_.size());
    for (std::size_t j = 0; j < decisions_.size(); ++j) {
      flags_[j] = decisions_[j].allowed ? 1 : 0;
    }
  } else {
    // Counting tick: the verdict byte is all this path reads, so skip
    // the Decision copy wave entirely (evaluate_batch_allowed is pinned
    // element-identical to evaluate_batch's allow bits).
    flags_.resize(batch_.size());
    image_.evaluate_batch_allowed(batch_, flags_);
  }
  for (std::size_t j = 0; j < flags_.size(); ++j) {
    if (flags_[j] != 0) {
      ++stats.allowed;
    } else {
      ++stats.denied;
      // Deny-path only: one division attributes the decision back to its
      // vehicle for the per-vehicle telemetry.
      ++vehicle_denied_[(tick_offset_ + j) / checks];
    }
  }
  stats.decisions += batch_.size();
  tick_offset_ += batch_.size();
  if (sink) {
    try {
      sink(batch_, decisions_);
    } catch (...) {
      // A throwing sink must not leave this chunk queued: the next
      // tick() would replay it (stale modes, double counting) ahead of
      // fresh requests.
      batch_.clear();
      throw;
    }
  }
  batch_.clear();
}

FleetTickStats FleetEvaluator::tick(const ChunkSink& sink) {
  FleetTickStats stats;
  vehicle_denied_.assign(vehicle_denied_.size(), 0);
  tick_offset_ = 0;
  for (const std::uint8_t mode : vehicle_modes_) {
    const mac::Sid mode_sid = mode_sids_[mode];
    for (const core::SidRequest& request : resolved_) {
      core::SidRequest& queued = batch_.emplace_back(request);
      queued.mode = mode_sid;
      if (batch_.size() == batch_chunk_) flush(stats, sink);
    }
  }
  flush(stats, sink);
  stats.vehicle_denied = vehicle_denied_;
  return stats;
}

void FleetEvaluator::sweep_range(Worker& worker, std::size_t begin,
                                 std::size_t end, bool capture) {
  const std::size_t checks = checks_.size();
  if (capture) {
    // Sink mode: materialise the shard's whole request stream once, then
    // evaluate it in place chunk by chunk. resize() is a no-op after the
    // first tick at this shard size; Decision assignments reuse string
    // capacity, so a warm capture sweep allocates nothing either.
    const std::size_t total = (end - begin) * checks;
    worker.captured_requests.resize(total);
    worker.captured_decisions.resize(total);
    std::size_t w = 0;
    for (std::size_t v = begin; v < end; ++v) {
      const mac::Sid mode_sid = mode_sids_[vehicle_modes_[v]];
      for (const core::SidRequest& request : resolved_) {
        core::SidRequest& queued = worker.captured_requests[w++];
        queued = request;
        queued.mode = mode_sid;
      }
    }
    for (std::size_t off = 0; off < total; off += batch_chunk_) {
      const std::size_t n = std::min(batch_chunk_, total - off);
      image_.evaluate_batch(
          std::span<const core::SidRequest>(&worker.captured_requests[off], n),
          std::span<core::Decision>(&worker.captured_decisions[off], n));
    }
    for (std::size_t j = 0; j < total; ++j) {
      if (worker.captured_decisions[j].allowed) {
        ++worker.allowed;
      } else {
        ++worker.denied;
        ++vehicle_denied_[begin + j / checks];
      }
    }
    return;
  }

  // Counting mode: fixed-size chunk buffers, exactly like tick()'s.
  worker.batch.clear();
  worker.batch.reserve(batch_chunk_);
  std::size_t flushed_offset = begin * checks;  // global decision index
  auto drain = [&] {
    if (worker.batch.empty()) return;
    worker.flags.resize(worker.batch.size());
    image_.evaluate_batch_allowed(worker.batch, worker.flags);
    for (std::size_t j = 0; j < worker.flags.size(); ++j) {
      if (worker.flags[j] != 0) {
        ++worker.allowed;
      } else {
        ++worker.denied;
        ++vehicle_denied_[(flushed_offset + j) / checks];
      }
    }
    flushed_offset += worker.batch.size();
    worker.batch.clear();
  };
  for (std::size_t v = begin; v < end; ++v) {
    const mac::Sid mode_sid = mode_sids_[vehicle_modes_[v]];
    for (const core::SidRequest& request : resolved_) {
      core::SidRequest& queued = worker.batch.emplace_back(request);
      queued.mode = mode_sid;
      if (worker.batch.size() == batch_chunk_) drain();
    }
  }
  drain();
}

void FleetEvaluator::worker_loop(std::size_t w) {
  Pool& pool = *pool_;
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t begin = 0;
    std::size_t end = 0;
    bool capture = false;
    {
      std::unique_lock lock(pool.m);
      pool.work_cv.wait(lock, [&] { return pool.stop || pool.epoch != seen; });
      if (pool.stop) return;
      seen = pool.epoch;
      begin = (w * pool.fleet) / pool.k;
      end = ((w + 1) * pool.fleet) / pool.k;
      capture = pool.capture;
    }
    // Outside the lock: the shard touches only this worker's padded slot,
    // its disjoint vehicle_denied_ range, and owner state the epoch
    // hand-off ordered before us.
    try {
      sweep_range(workers_[w], begin, end, capture);
    } catch (...) {
      errors_[w] = std::current_exception();
    }
    {
      std::lock_guard lock(pool.m);
      if (--pool.pending == 0) pool.done_cv.notify_one();
    }
  }
}

void FleetEvaluator::ensure_pool(std::size_t k) {
  if (pool_ != nullptr && pool_->threads.size() == k - 1) return;
  stop_pool();
  pool_ = std::make_unique<Pool>();
  pool_->threads.reserve(k - 1);
  for (std::size_t w = 1; w < k; ++w) {
    pool_->threads.emplace_back([this, w] { worker_loop(w); });
  }
}

void FleetEvaluator::stop_pool() noexcept {
  if (pool_ == nullptr) return;
  {
    std::lock_guard lock(pool_->m);
    pool_->stop = true;
  }
  pool_->work_cv.notify_all();
  for (std::thread& thread : pool_->threads) thread.join();
  pool_.reset();
}

FleetTickStats FleetEvaluator::tick_parallel(std::size_t n_threads,
                                             const ChunkSink& sink) {
  if (n_threads == 0) {
    throw std::invalid_argument("FleetEvaluator::tick_parallel: zero threads");
  }
  const std::size_t fleet = vehicle_modes_.size();
  const std::size_t k = std::min(n_threads, fleet);
  if (workers_.size() != k) {
    // Thread-count change: rebuild the per-worker buffers (the only
    // post-first-tick allocation path; a constant k reuses everything).
    workers_ = std::vector<Worker>(k);
  }
  vehicle_denied_.assign(fleet, 0);
  for (Worker& worker : workers_) {
    worker.allowed = 0;
    worker.denied = 0;
  }
  errors_.assign(k, nullptr);

  const bool capture = static_cast<bool>(sink);
  // Contiguous shards: worker w sweeps [w*fleet/k, (w+1)*fleet/k). The
  // shared image is sealed (immutable), vehicle_denied_ writes are
  // range-disjoint, and each worker owns its padded Worker slot — the
  // sweep needs no synchronisation beyond the epoch/done hand-offs.
  if (k > 1) {
    // Wake the parked pool (started on the first multi-threaded sweep;
    // reused for every tick at the same k). Everything the workers read
    // this tick was written above, sequenced before the epoch bump.
    ensure_pool(k);
    Pool& pool = *pool_;
    {
      std::lock_guard lock(pool.m);
      pool.capture = capture;
      pool.fleet = fleet;
      pool.k = k;
      pool.pending = k - 1;
      ++pool.epoch;
    }
    pool.work_cv.notify_all();
    try {
      sweep_range(workers_[0], 0, fleet / k, capture);  // caller = worker 0
    } catch (...) {
      errors_[0] = std::current_exception();
    }
    {
      std::unique_lock lock(pool.m);
      pool.done_cv.wait(lock, [&] { return pool.pending == 0; });
    }
  } else {
    try {
      sweep_range(workers_[0], 0, fleet, capture);
    } catch (...) {
      errors_[0] = std::current_exception();
    }
  }
  for (std::size_t w = 0; w < k; ++w) {
    if (errors_[w]) std::rethrow_exception(errors_[w]);
  }

  // Deterministic merge, shard order (== fleet order).
  FleetTickStats stats;
  for (const Worker& worker : workers_) {
    stats.allowed += worker.allowed;
    stats.denied += worker.denied;
  }
  stats.decisions = stats.allowed + stats.denied;
  stats.vehicle_denied = vehicle_denied_;

  if (capture) {
    // Replay the captured streams to the sink in fleet order, sliced to
    // the same nominal chunk size as tick() (boundaries may differ when a
    // shard size is not a chunk multiple; the concatenation never does).
    for (const Worker& worker : workers_) {
      const std::size_t total = worker.captured_requests.size();
      for (std::size_t off = 0; off < total; off += batch_chunk_) {
        const std::size_t n = std::min(batch_chunk_, total - off);
        sink(std::span<const core::SidRequest>(&worker.captured_requests[off],
                                               n),
             std::span<const core::Decision>(&worker.captured_decisions[off],
                                             n));
      }
    }
  }
  return stats;
}

FleetTickStats FleetEvaluator::tick_scalar() const {
  FleetTickStats stats;
  for (const std::uint8_t mode : vehicle_modes_) {
    const mac::Sid mode_sid = mode_sids_[mode];
    for (core::SidRequest request : resolved_) {
      request.mode = mode_sid;
      const core::Decision decision = image_.evaluate(request);
      decision.allowed ? ++stats.allowed : ++stats.denied;
      ++stats.decisions;
    }
  }
  return stats;
}

FleetTickStats FleetEvaluator::tick_strings(
    const core::PolicySet& policy) const {
  FleetTickStats stats;
  for (const std::uint8_t mode : vehicle_modes_) {
    const threat::ModeId& mode_id = mode_ids_[mode];
    for (const FleetCheck& check : checks_) {
      // The legacy boundary cost, paid per element: an AccessRequest is
      // assembled (string copies) and every name re-hashed inside
      // PolicySet::evaluate's interning shim.
      core::AccessRequest request{check.subject, check.object, check.access,
                                  mode_id};
      const core::Decision decision = policy.evaluate(request);
      decision.allowed ? ++stats.allowed : ++stats.denied;
      ++stats.decisions;
    }
  }
  return stats;
}

}  // namespace psme::car
