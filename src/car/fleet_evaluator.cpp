#include "car/fleet_evaluator.h"

#include <stdexcept>

#include "car/ids.h"

namespace psme::car {

std::vector<FleetCheck> default_fleet_checks() {
  // Every question the binding layer asks when policing one vehicle:
  // each hosted entry point against each asset, read and write. The
  // deterministic (node-binding, asset-binding) order matters — fleet
  // sweeps must replay identically across runs (DESIGN.md §3).
  std::vector<FleetCheck> checks;
  for (const NodeBinding& node : node_bindings()) {
    for (const std::string& entry_point : node.entry_points) {
      for (const AssetBinding& asset : asset_bindings()) {
        for (const core::AccessType access :
             {core::AccessType::kRead, core::AccessType::kWrite}) {
          checks.push_back(FleetCheck{entry_point, asset.asset_id, access});
        }
      }
    }
  }
  return checks;
}

FleetEvaluator::FleetEvaluator(const core::CompiledPolicyImage& image,
                               std::vector<FleetCheck> checks,
                               FleetEvaluatorOptions options)
    : image_(image),
      checks_(std::move(checks)),
      batch_chunk_(options.batch_chunk) {
  if (options.fleet_size == 0) {
    throw std::invalid_argument("FleetEvaluator: empty fleet");
  }
  if (checks_.empty()) {
    throw std::invalid_argument("FleetEvaluator: empty per-vehicle workload");
  }
  if (batch_chunk_ == 0) {
    throw std::invalid_argument("FleetEvaluator: zero batch chunk");
  }

  // The once-per-fleet string boundary: every entity and mode name is
  // resolved into the image's shared SID space here; ticks never touch a
  // string again. Interning (rather than find) gives entities the policy
  // never names a stable SID too, so the memo of SIDs is total.
  mac::SidTable& sids = *image_.sid_table();
  resolved_.reserve(checks_.size());
  for (const FleetCheck& check : checks_) {
    core::SidRequest request;
    request.subject = sids.intern(check.subject);
    request.object = sids.intern(check.object);
    request.access = check.access;
    request.mode = mac::kNullSid;  // filled per vehicle at tick time
    resolved_.push_back(request);
  }
  for (CarMode mode : kAllModes) {
    const auto slot = static_cast<std::size_t>(mode);
    mode_ids_[slot] = mode_id(mode);
    mode_sids_[slot] = image_.mode_sid(mode_ids_[slot]);
  }

  vehicle_modes_.assign(options.fleet_size,
                        static_cast<std::uint8_t>(options.initial_mode));
  batch_.reserve(batch_chunk_);
  decisions_.reserve(batch_chunk_);
}

void FleetEvaluator::set_mode(std::size_t vehicle, CarMode mode) {
  vehicle_modes_.at(vehicle) = static_cast<std::uint8_t>(mode);
}

CarMode FleetEvaluator::mode(std::size_t vehicle) const {
  return static_cast<CarMode>(vehicle_modes_.at(vehicle));
}

void FleetEvaluator::flush(FleetTickStats& stats, const ChunkSink& sink) {
  if (batch_.empty()) return;
  decisions_.resize(batch_.size());
  image_.evaluate_batch(batch_, decisions_);
  for (const core::Decision& decision : decisions_) {
    decision.allowed ? ++stats.allowed : ++stats.denied;
  }
  stats.decisions += batch_.size();
  if (sink) {
    try {
      sink(batch_, decisions_);
    } catch (...) {
      // A throwing sink must not leave this chunk queued: the next
      // tick() would replay it (stale modes, double counting) ahead of
      // fresh requests.
      batch_.clear();
      throw;
    }
  }
  batch_.clear();
}

FleetTickStats FleetEvaluator::tick(const ChunkSink& sink) {
  FleetTickStats stats;
  for (const std::uint8_t mode : vehicle_modes_) {
    const mac::Sid mode_sid = mode_sids_[mode];
    for (const core::SidRequest& request : resolved_) {
      core::SidRequest& queued = batch_.emplace_back(request);
      queued.mode = mode_sid;
      if (batch_.size() == batch_chunk_) flush(stats, sink);
    }
  }
  flush(stats, sink);
  return stats;
}

FleetTickStats FleetEvaluator::tick_scalar() const {
  FleetTickStats stats;
  for (const std::uint8_t mode : vehicle_modes_) {
    const mac::Sid mode_sid = mode_sids_[mode];
    for (core::SidRequest request : resolved_) {
      request.mode = mode_sid;
      const core::Decision decision = image_.evaluate(request);
      decision.allowed ? ++stats.allowed : ++stats.denied;
      ++stats.decisions;
    }
  }
  return stats;
}

FleetTickStats FleetEvaluator::tick_strings(
    const core::PolicySet& policy) const {
  FleetTickStats stats;
  for (const std::uint8_t mode : vehicle_modes_) {
    const threat::ModeId& mode_id = mode_ids_[mode];
    for (const FleetCheck& check : checks_) {
      // The legacy boundary cost, paid per element: an AccessRequest is
      // assembled (string copies) and every name re-hashed inside
      // PolicySet::evaluate's interning shim.
      core::AccessRequest request{check.subject, check.object, check.access,
                                  mode_id};
      const core::Decision decision = policy.evaluate(request);
      decision.allowed ? ++stats.allowed : ++stats.denied;
      ++stats.decisions;
    }
  }
  return stats;
}

}  // namespace psme::car
