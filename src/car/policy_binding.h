// psme::car — translating policy rules into bus-level enforcement.
//
// Policy rules talk about entry points and assets; the enforcement points
// (HPE read/write filters, controller acceptance filters) talk in CAN
// message IDs. The binding rules are:
//
//  WRITE side — node N may emit command id c of asset A in mode m iff some
//  entry point hosted by N is allowed to write A in m. N may always emit
//  the status ids of assets it owns.
//
//  READ side — node N may receive status id s of asset A in mode m iff
//  some entry point hosted by N may read A in m. N may receive the command
//  ids of an asset it owns only in modes where *some* entry point in the
//  system may legitimately write that asset — if nobody may command the
//  asset in mode m, a command frame arriving in m is necessarily spoofed
//  and the reading filter drops it at the victim.
//
//  Structural ids — every node reads the mode-change broadcast and the
//  fail-safe trigger; the gateway alone emits mode changes; diagnostic
//  request/response ids are enabled only in remote-diagnostic mode.
//
// Compiling a full vehicle asks the policy the same (entry point, asset,
// access, mode) question many times over — every node consults
// anyone_may_write for every asset in every mode. BindingCompiler below
// consumes the policy's SID-native compiled form (CompiledPolicyImage):
// entity and mode names resolve through the image's *shared* interner —
// there is no per-compiler re-interning stage — and each verdict is
// memoised under a packed 64-bit SID key, so each unique question
// reaches the image exactly once per compilation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "can/controller.h"
#include "can/wire_mac.h"
#include "car/ids.h"
#include "car/modes.h"
#include "core/policy.h"
#include "core/policy_image.h"
#include "hpe/hpe.h"
#include "mac/sid_table.h"

namespace psme::car {

/// Feature switches for the binding — each is one of the design choices
/// DESIGN.md calls out; the ablation bench toggles them independently.
struct BindingOptions {
  /// Paper's fine-grained extension: payload constraints on approved ids
  /// (only-unlock during fail-safe, only-arm over the bus, plausibility
  /// bounds on crash acceleration).
  bool content_rules = false;
  /// ∃-writer rule: an asset's command ids enter its owner's read list
  /// only in modes where some entry point may legitimately write the
  /// asset. Disabling reverts to "owners always accept their commands".
  bool writer_existence_gate = true;
  /// Per-mode approved lists with autonomous mode snooping. Disabling
  /// freezes every HPE on its normal-mode lists.
  bool mode_conditional = true;
};

/// SID-native, memoising compiler from one compiled policy to
/// approved-id lists. Holds a reference to the image — keep it (and,
/// for the PolicySet convenience constructor, the set) alive and
/// unmodified for the compiler's lifetime (rebuild the compiler after a
/// policy update; a stale memo would happily answer from the old rules).
class BindingCompiler {
 public:
  /// Compiles against a SID-native policy image; entity names resolve
  /// through the image's shared interner.
  explicit BindingCompiler(const core::CompiledPolicyImage& image,
                           BindingOptions options = {});

  /// Convenience: compiles against the set's lazily-built image. The
  /// compiler retains shared ownership of that image snapshot, so a
  /// later mutation of the set leaves this compiler answering (stale
  /// but well-defined) from the snapshot — rebuild after a policy
  /// update, as ever.
  explicit BindingCompiler(const core::PolicySet& policy,
                           BindingOptions options = {});

  /// True when `entry_point` may access `asset_id` in `mode` — one
  /// memoised PolicySet::evaluate.
  [[nodiscard]] bool entry_point_may(const std::string& entry_point,
                                     const std::string& asset_id,
                                     core::AccessType access, CarMode mode);

  /// OR over the node's entry points.
  [[nodiscard]] bool node_may(const std::string& node,
                              const std::string& asset_id,
                              core::AccessType access, CarMode mode);

  /// True when any entry point in the system may write `asset_id` in `mode`.
  [[nodiscard]] bool anyone_may_write(const std::string& asset_id,
                                      CarMode mode);

  /// Approved read/write lists for one node in one mode.
  [[nodiscard]] hpe::ListPair build_lists(const std::string& node,
                                          CarMode mode);

  /// Full HPE configuration: per-mode lists plus autonomous mode snooping.
  [[nodiscard]] hpe::HpeConfig build_hpe_config(const std::string& node);

  /// Software acceptance filters equivalent to the mode-`mode` read list.
  [[nodiscard]] std::vector<can::AcceptanceFilter> build_rx_filters(
      const std::string& node, CarMode mode);

  /// Compiles the wire-MAC binding table for one node's ingress in one
  /// mode — the read side of the binding rules expressed in SID space:
  ///   * status ids of every asset bind (subjects = the node's entry
  ///     points, object = asset, READ) — the frame is admitted iff the
  ///     node may read the asset;
  ///   * command ids of assets the node OWNS bind (subjects = EVERY
  ///     entry point in the system, object = asset, WRITE) — the wire
  ///     form of the ∃-writer gate: a command frame is legitimate iff
  ///     SOME entry point may command the asset, adjudicated as an OR
  ///     over candidate subjects in one batch;
  ///   * command ids of assets the node does not own stay unbound
  ///     (deny-by-default), as in the HPE read lists;
  ///   * structural ids pass: mode change, fail-safe trigger, the
  ///     OSEK-NM window [0x420, 0x43F], and (in remote-diagnostic mode
  ///     only) the diagnostic request/response pair, which carry ISO-TP
  ///     conversations and are marked as such.
  /// The table's mode SID is the given mode's, so an image-backed
  /// can::WireMac adjudicates mode-conditional rules correctly.
  [[nodiscard]] can::WireBindingTable build_wire_table(const std::string& node,
                                                       CarMode mode);

  struct Stats {
    std::uint64_t queries = 0;             // entry_point_may calls
    std::uint64_t policy_evaluations = 0;  // of which reached the image (misses)
    std::uint64_t unique_questions = 0;    // memo table population
    [[nodiscard]] std::uint64_t memo_hits() const noexcept {
      return queries - policy_evaluations;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::CompiledPolicyImage& image() const noexcept {
    return image_;
  }
  [[nodiscard]] const BindingOptions& options() const noexcept { return options_; }

 private:
  /// Primary: `image` when borrowing (non-owning public ctor), null to
  /// answer from the retained snapshot (PolicySet ctor).
  BindingCompiler(std::shared_ptr<const core::CompiledPolicyImage> retained,
                  const core::CompiledPolicyImage* image,
                  BindingOptions options);

  /// Non-null only on the PolicySet path: keeps the set's image
  /// snapshot alive across later set mutations.
  std::shared_ptr<const core::CompiledPolicyImage> retained_;
  const core::CompiledPolicyImage& image_;
  BindingOptions options_;
  /// The image's interner — shared, not a private re-interning table.
  std::shared_ptr<mac::SidTable> sids_;
  /// CarMode -> the image-space SID of its mode id, resolved once.
  std::array<mac::Sid, 3> mode_sids_{};
  std::unordered_map<std::uint64_t, bool> memo_;
  Stats stats_;
};

// -- string-level conveniences (each compiles a fresh BindingCompiler) ----

/// True when `node` may access `asset_id` in the given way under `policy`
/// while the car is in `mode` (the OR over the node's entry points).
[[nodiscard]] bool node_may(const std::string& node, const std::string& asset_id,
                            core::AccessType access, CarMode mode,
                            const core::PolicySet& policy);

/// True when any entry point in the system may write `asset_id` in `mode`.
[[nodiscard]] bool anyone_may_write(const std::string& asset_id, CarMode mode,
                                    const core::PolicySet& policy);

/// Approved read/write lists for one node in one mode.
[[nodiscard]] hpe::ListPair build_lists(const std::string& node, CarMode mode,
                                        const core::PolicySet& policy,
                                        const BindingOptions& options = {});

/// Full HPE configuration: per-mode lists plus autonomous mode snooping.
[[nodiscard]] hpe::HpeConfig build_hpe_config(const std::string& node,
                                              const core::PolicySet& policy,
                                              const BindingOptions& options = {});

/// Software acceptance filters equivalent to the mode-`mode` read list.
/// (Software filters cannot switch modes autonomously; the node's firmware
/// must reprogram them on mode change — the vulnerability the HPE removes.)
[[nodiscard]] std::vector<can::AcceptanceFilter> build_rx_filters(
    const std::string& node, CarMode mode, const core::PolicySet& policy);

}  // namespace psme::car
