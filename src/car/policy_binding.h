// psme::car — translating policy rules into bus-level enforcement.
//
// Policy rules talk about entry points and assets; the enforcement points
// (HPE read/write filters, controller acceptance filters) talk in CAN
// message IDs. The binding rules are:
//
//  WRITE side — node N may emit command id c of asset A in mode m iff some
//  entry point hosted by N is allowed to write A in m. N may always emit
//  the status ids of assets it owns.
//
//  READ side — node N may receive status id s of asset A in mode m iff
//  some entry point hosted by N may read A in m. N may receive the command
//  ids of an asset it owns only in modes where *some* entry point in the
//  system may legitimately write that asset — if nobody may command the
//  asset in mode m, a command frame arriving in m is necessarily spoofed
//  and the reading filter drops it at the victim.
//
//  Structural ids — every node reads the mode-change broadcast and the
//  fail-safe trigger; the gateway alone emits mode changes; diagnostic
//  request/response ids are enabled only in remote-diagnostic mode.
#pragma once

#include <string>
#include <vector>

#include "can/controller.h"
#include "car/ids.h"
#include "car/modes.h"
#include "core/policy.h"
#include "hpe/hpe.h"

namespace psme::car {

/// True when `node` may access `asset_id` in the given way under `policy`
/// while the car is in `mode` (the OR over the node's entry points).
[[nodiscard]] bool node_may(const std::string& node, const std::string& asset_id,
                            core::AccessType access, CarMode mode,
                            const core::PolicySet& policy);

/// True when any entry point in the system may write `asset_id` in `mode`.
[[nodiscard]] bool anyone_may_write(const std::string& asset_id, CarMode mode,
                                    const core::PolicySet& policy);

/// Feature switches for the binding — each is one of the design choices
/// DESIGN.md calls out; the ablation bench toggles them independently.
struct BindingOptions {
  /// Paper's fine-grained extension: payload constraints on approved ids
  /// (only-unlock during fail-safe, only-arm over the bus, plausibility
  /// bounds on crash acceleration).
  bool content_rules = false;
  /// ∃-writer rule: an asset's command ids enter its owner's read list
  /// only in modes where some entry point may legitimately write the
  /// asset. Disabling reverts to "owners always accept their commands".
  bool writer_existence_gate = true;
  /// Per-mode approved lists with autonomous mode snooping. Disabling
  /// freezes every HPE on its normal-mode lists.
  bool mode_conditional = true;
};

/// Approved read/write lists for one node in one mode.
[[nodiscard]] hpe::ListPair build_lists(const std::string& node, CarMode mode,
                                        const core::PolicySet& policy,
                                        const BindingOptions& options = {});

/// Full HPE configuration: per-mode lists plus autonomous mode snooping.
[[nodiscard]] hpe::HpeConfig build_hpe_config(const std::string& node,
                                              const core::PolicySet& policy,
                                              const BindingOptions& options = {});

/// Software acceptance filters equivalent to the mode-`mode` read list.
/// (Software filters cannot switch modes autonomously; the node's firmware
/// must reprogram them on mode change — the vulnerability the HPE removes.)
[[nodiscard]] std::vector<can::AcceptanceFilter> build_rx_filters(
    const std::string& node, CarMode mode, const core::PolicySet& policy);

}  // namespace psme::car
