// psme::car — translating policy rules into bus-level enforcement.
//
// Policy rules talk about entry points and assets; the enforcement points
// (HPE read/write filters, controller acceptance filters) talk in CAN
// message IDs. The binding rules are:
//
//  WRITE side — node N may emit command id c of asset A in mode m iff some
//  entry point hosted by N is allowed to write A in m. N may always emit
//  the status ids of assets it owns.
//
//  READ side — node N may receive status id s of asset A in mode m iff
//  some entry point hosted by N may read A in m. N may receive the command
//  ids of an asset it owns only in modes where *some* entry point in the
//  system may legitimately write that asset — if nobody may command the
//  asset in mode m, a command frame arriving in m is necessarily spoofed
//  and the reading filter drops it at the victim.
//
//  Structural ids — every node reads the mode-change broadcast and the
//  fail-safe trigger; the gateway alone emits mode changes; diagnostic
//  request/response ids are enabled only in remote-diagnostic mode.
//
// Compiling a full vehicle asks the policy the same (entry point, asset,
// access, mode) question many times over — every node consults
// anyone_may_write for every asset in every mode. BindingCompiler below
// interns entity names into SIDs (mac::SidTable) and memoises each
// verdict under a packed 64-bit key, so each unique question reaches
// PolicySet::evaluate exactly once per compilation.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "can/controller.h"
#include "car/ids.h"
#include "car/modes.h"
#include "core/policy.h"
#include "hpe/hpe.h"
#include "mac/sid_table.h"

namespace psme::car {

/// Feature switches for the binding — each is one of the design choices
/// DESIGN.md calls out; the ablation bench toggles them independently.
struct BindingOptions {
  /// Paper's fine-grained extension: payload constraints on approved ids
  /// (only-unlock during fail-safe, only-arm over the bus, plausibility
  /// bounds on crash acceleration).
  bool content_rules = false;
  /// ∃-writer rule: an asset's command ids enter its owner's read list
  /// only in modes where some entry point may legitimately write the
  /// asset. Disabling reverts to "owners always accept their commands".
  bool writer_existence_gate = true;
  /// Per-mode approved lists with autonomous mode snooping. Disabling
  /// freezes every HPE on its normal-mode lists.
  bool mode_conditional = true;
};

/// SID-interned, memoising compiler from one PolicySet to approved-id
/// lists. Holds a reference to the policy — keep the set alive and
/// unmodified for the compiler's lifetime (rebuild the compiler after a
/// policy update; a stale memo would happily answer from the old rules).
class BindingCompiler {
 public:
  explicit BindingCompiler(const core::PolicySet& policy,
                           BindingOptions options = {});

  /// True when `entry_point` may access `asset_id` in `mode` — one
  /// memoised PolicySet::evaluate.
  [[nodiscard]] bool entry_point_may(const std::string& entry_point,
                                     const std::string& asset_id,
                                     core::AccessType access, CarMode mode);

  /// OR over the node's entry points.
  [[nodiscard]] bool node_may(const std::string& node,
                              const std::string& asset_id,
                              core::AccessType access, CarMode mode);

  /// True when any entry point in the system may write `asset_id` in `mode`.
  [[nodiscard]] bool anyone_may_write(const std::string& asset_id,
                                      CarMode mode);

  /// Approved read/write lists for one node in one mode.
  [[nodiscard]] hpe::ListPair build_lists(const std::string& node,
                                          CarMode mode);

  /// Full HPE configuration: per-mode lists plus autonomous mode snooping.
  [[nodiscard]] hpe::HpeConfig build_hpe_config(const std::string& node);

  /// Software acceptance filters equivalent to the mode-`mode` read list.
  [[nodiscard]] std::vector<can::AcceptanceFilter> build_rx_filters(
      const std::string& node, CarMode mode);

  struct Stats {
    std::uint64_t queries = 0;             // entry_point_may calls
    std::uint64_t policy_evaluations = 0;  // of which reached the PolicySet
    [[nodiscard]] std::uint64_t memo_hits() const noexcept {
      return queries - policy_evaluations;
    }
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] const core::PolicySet& policy() const noexcept { return policy_; }
  [[nodiscard]] const BindingOptions& options() const noexcept { return options_; }

 private:
  const core::PolicySet& policy_;
  BindingOptions options_;
  mac::SidTable sids_;                       // entry-point and asset names
  std::unordered_map<std::uint64_t, bool> memo_;
  Stats stats_;
};

// -- string-level conveniences (each compiles a fresh BindingCompiler) ----

/// True when `node` may access `asset_id` in the given way under `policy`
/// while the car is in `mode` (the OR over the node's entry points).
[[nodiscard]] bool node_may(const std::string& node, const std::string& asset_id,
                            core::AccessType access, CarMode mode,
                            const core::PolicySet& policy);

/// True when any entry point in the system may write `asset_id` in `mode`.
[[nodiscard]] bool anyone_may_write(const std::string& asset_id, CarMode mode,
                                    const core::PolicySet& policy);

/// Approved read/write lists for one node in one mode.
[[nodiscard]] hpe::ListPair build_lists(const std::string& node, CarMode mode,
                                        const core::PolicySet& policy,
                                        const BindingOptions& options = {});

/// Full HPE configuration: per-mode lists plus autonomous mode snooping.
[[nodiscard]] hpe::HpeConfig build_hpe_config(const std::string& node,
                                              const core::PolicySet& policy,
                                              const BindingOptions& options = {});

/// Software acceptance filters equivalent to the mode-`mode` read list.
/// (Software filters cannot switch modes autonomously; the node's firmware
/// must reprogram them on mode change — the vulnerability the HPE removes.)
[[nodiscard]] std::vector<can::AcceptanceFilter> build_rx_filters(
    const std::string& node, CarMode mode, const core::PolicySet& policy);

}  // namespace psme::car
