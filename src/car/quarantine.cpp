#include "car/quarantine.h"

#include <algorithm>
#include <string>

#include "car/ids.h"
#include "car/modes.h"
#include "car/vehicle.h"

namespace psme::car {

std::string_view to_string(QuarantineAction action) noexcept {
  switch (action) {
    case QuarantineAction::kIdBlocked: return "id-blocked";
    case QuarantineAction::kIdReleased: return "id-released";
    case QuarantineAction::kPortIsolated: return "port-isolated";
    case QuarantineAction::kAllowlistSkip: return "allowlist-skip";
    case QuarantineAction::kEscalated: return "escalated";
  }
  return "?";
}

namespace {
[[nodiscard]] std::uint64_t id_key(can::CanId id) noexcept {
  return (static_cast<std::uint64_t>(id.is_extended()) << 32) | id.raw();
}
}  // namespace

QuarantineController::QuarantineController(
    sim::Scheduler& sched, can::Bus& bus,
    const monitor::FrameRateMonitor& monitor, QuarantineOptions options)
    : sched_(sched), bus_(bus), monitor_(monitor), options_(options) {}

void QuarantineController::protect(can::Controller& controller) {
  controllers_.push_back(&controller);
}

void QuarantineController::allow_id(std::uint32_t standard_id) {
  allowlist_.insert(standard_id);
}

void QuarantineController::protect_port(std::size_t port_index) {
  protected_ports_.insert(port_index);
}

void QuarantineController::start() {
  if (poller_ != nullptr) return;
  poller_ = std::make_unique<sim::PeriodicTask>(
      sched_, sched_.now() + options_.poll_period, options_.poll_period,
      [this] { poll(); }, "quarantine.poll");
}

std::vector<can::CanId> QuarantineController::blocked_ids() const {
  std::vector<can::CanId> ids;
  if (!controllers_.empty()) ids = controllers_.front()->quarantined_ids();
  return ids;
}

void QuarantineController::poll() {
  const auto& alerts = monitor_.alerts();
  for (; alerts_seen_ < alerts.size(); ++alerts_seen_) {
    const monitor::Alert& alert = alerts[alerts_seen_];
    ++stats_.alerts_consumed;
    const std::uint64_t key = id_key(alert.id);
    // First sighting of an offender: record the attribution baseline, so
    // the isolation decision measures traffic SINCE the anomaly began, not
    // the id's whole legitimate history.
    if (tx_snapshot_.find(key) == tx_snapshot_.end()) {
      tx_snapshot_[key] = bus_.tx_attribution(alert.id);
    }
    if (++alert_counts_[key] >= options_.react_after_alerts &&
        handled_.find(key) == handled_.end()) {
      react(alert.id);
    }
  }

  if (options_.escalate_after_alerts != 0 && !escalated_ &&
      stats_.alerts_consumed >= options_.escalate_after_alerts) {
    escalated_ = true;
    ++stats_.escalations;
    events_.push_back(QuarantineEvent{
        sched_.now(), QuarantineAction::kEscalated, can::CanId{},
        "alerts=" + std::to_string(stats_.alerts_consumed)});
    if (escalate_) escalate_();
  }
}

void QuarantineController::react(can::CanId id) {
  const std::uint64_t key = id_key(id);
  if (try_isolate(id)) {
    handled_.insert(key);
    return;
  }
  if (!id.is_extended() && allowlist_.count(id.raw()) != 0) {
    // Table-I-allowed traffic is never blocked: record the skip and leave
    // escalation (or a later dominance-clear isolation) to handle it.
    ++stats_.allowlist_skips;
    events_.push_back(QuarantineEvent{sched_.now(),
                                      QuarantineAction::kAllowlistSkip, id,
                                      "allowlisted id"});
    return;
  }
  install_block(id);
  handled_.insert(key);
}

bool QuarantineController::try_isolate(can::CanId id) {
  const std::uint64_t key = id_key(id);
  const std::vector<std::uint64_t> now = bus_.tx_attribution(id);
  const auto snap_it = tx_snapshot_.find(key);

  std::uint64_t best = 0, second = 0;
  std::size_t best_port = now.size();
  for (std::size_t i = 0; i < now.size(); ++i) {
    std::uint64_t delta = now[i];
    if (snap_it != tx_snapshot_.end() && i < snap_it->second.size()) {
      delta -= snap_it->second[i];
    }
    if (delta > best) {
      second = best;
      best = delta;
      best_port = i;
    } else if (delta > second) {
      second = delta;
    }
  }

  if (best_port == now.size() || best < options_.isolate_min_tx) return false;
  if (protected_ports_.count(best_port) != 0) return false;
  if (static_cast<double>(best) <
      options_.isolate_dominance * static_cast<double>(second)) {
    return false;  // no clear offender: cutting here could hit the owner
  }

  can::Port& port = bus_.port(best_port);
  if (!port.connected()) return false;
  port.disconnect();
  isolated_.push_back(best_port);
  ++stats_.ports_isolated;
  events_.push_back(QuarantineEvent{
      sched_.now(), QuarantineAction::kPortIsolated, id,
      "port=" + port.name() + " tx=" + std::to_string(best)});
  return true;
}

void QuarantineController::install_block(can::CanId id) {
  for (can::Controller* controller : controllers_) {
    controller->quarantine_id(id);
  }
  ++stats_.ids_blocked;
  events_.push_back(QuarantineEvent{sched_.now(), QuarantineAction::kIdBlocked,
                                    id, "expires in poll cycles"});
  sched_.schedule_in(options_.block_duration, [this, id] { release_block(id); },
                     "quarantine.release");
}

void QuarantineController::release_block(can::CanId id) {
  bool released = false;
  for (can::Controller* controller : controllers_) {
    released = controller->release_quarantined_id(id) || released;
  }
  if (!released) return;
  ++stats_.blocks_expired;
  // Eligible to be re-blocked if the anomaly persists.
  handled_.erase(id_key(id));
  events_.push_back(QuarantineEvent{sched_.now(), QuarantineAction::kIdReleased,
                                    id, "block expired"});
}

std::unique_ptr<QuarantineController> make_vehicle_quarantine(
    Vehicle& vehicle, const monitor::FrameRateMonitor& monitor,
    QuarantineOptions options) {
  auto quarantine = std::make_unique<QuarantineController>(
      vehicle.bus().scheduler(), vehicle.bus(), monitor, options);

  quarantine->protect(vehicle.gateway().controller());
  for (const std::string& name : vehicle.node_names()) {
    quarantine->protect(vehicle.node(name)->controller());
  }

  // The Table-I allowlist: every id the policy model legitimises for some
  // entry point in some mode. Blocking any of these would deny legitimate
  // traffic, so the quarantine layer may only isolate or escalate there.
  for (const AssetBinding& binding : asset_bindings()) {
    for (const std::uint32_t id : binding.command_ids) quarantine->allow_id(id);
    for (const std::uint32_t id : binding.status_ids) quarantine->allow_id(id);
  }
  for (const std::uint32_t id :
       {msg::kModeChange, msg::kFailSafeTrigger, msg::kEmergencyCall,
        msg::kSensorAccel, msg::kSensorBrake, msg::kSensorSpeed,
        msg::kSensorProximity, msg::kAirbagEvent, msg::kTrackingReport,
        msg::kFirmwareUpdate, msg::kDiagRequest, msg::kDiagResponse}) {
    quarantine->allow_id(id);
  }

  // The gateway owns the car mode; cutting it would decapitate the
  // vehicle. Its port is attached first in the Vehicle constructor.
  for (std::size_t i = 0; i < vehicle.bus().port_count(); ++i) {
    if (vehicle.bus().port(i).name() == "gateway") {
      quarantine->protect_port(i);
      break;
    }
  }

  quarantine->set_escalation(
      [&vehicle] { vehicle.set_mode(CarMode::kFailSafe); });
  return quarantine;
}

}  // namespace psme::car
