#include "car/segmented.h"

#include <algorithm>

namespace psme::car {

hpe::BridgeLists build_gateway_lists(
    BindingCompiler& compiler,
    const std::vector<std::string>& telematics_nodes, CarMode mode) {
  hpe::BridgeLists lists;

  // Structural frames cross in both directions so the segments share the
  // operational picture: fail-safe trigger toward telematics (e-call), and
  // nothing implicit toward control (mode frames are forwarded by the
  // bridge's snooping rule itself).
  lists.b_to_a.add(can::CanId::standard(msg::kFailSafeTrigger));
  lists.b_to_a.add(can::CanId::standard(msg::kEmergencyCall));

  for (const AssetBinding& asset : asset_bindings()) {
    const bool asset_on_telematics =
        std::find(telematics_nodes.begin(), telematics_nodes.end(),
                  asset.owner_node) != telematics_nodes.end();

    bool telematics_may_write = false;
    bool telematics_may_read = false;
    for (const auto& node : telematics_nodes) {
      telematics_may_write =
          telematics_may_write ||
          compiler.node_may(node, asset.asset_id, core::AccessType::kWrite, mode);
      telematics_may_read =
          telematics_may_read ||
          compiler.node_may(node, asset.asset_id, core::AccessType::kRead, mode);
    }

    if (asset_on_telematics) {
      // Commands from control-side writers toward a telematics asset, and
      // the asset's status back toward control-side readers. Control-side
      // legitimacy mirrors the flat topology's ∃-writer logic.
      for (const auto& binding : node_bindings()) {
        const bool on_telematics =
            std::find(telematics_nodes.begin(), telematics_nodes.end(),
                      binding.node) != telematics_nodes.end();
        if (on_telematics) continue;
        if (compiler.node_may(binding.node, asset.asset_id,
                              core::AccessType::kWrite, mode)) {
          for (const auto id : asset.command_ids) {
            lists.b_to_a.add(can::CanId::standard(id));
          }
        }
        if (compiler.node_may(binding.node, asset.asset_id,
                              core::AccessType::kRead, mode)) {
          for (const auto id : asset.status_ids) {
            lists.a_to_b.add(can::CanId::standard(id));
          }
        }
      }
      continue;
    }

    // Control-side asset: telematics may command it only when the policy
    // says so (a->b = telematics->control), and sees its status only with
    // a read grant (b->a).
    if (telematics_may_write) {
      for (const auto id : asset.command_ids) {
        lists.a_to_b.add(can::CanId::standard(id));
      }
    }
    if (telematics_may_read) {
      for (const auto id : asset.status_ids) {
        lists.b_to_a.add(can::CanId::standard(id));
      }
    }
  }
  return lists;
}

hpe::BridgeLists build_gateway_lists(
    const std::vector<std::string>& telematics_nodes, CarMode mode,
    const core::PolicySet& policy) {
  BindingCompiler compiler(policy);
  return build_gateway_lists(compiler, telematics_nodes, mode);
}

hpe::BridgeConfig build_gateway_config(
    const std::vector<std::string>& telematics_nodes,
    const core::PolicySet& policy) {
  BindingCompiler compiler(policy);
  hpe::BridgeConfig config;
  config.mode_frame_id = msg::kModeChange;
  for (CarMode mode : kAllModes) {
    config.per_mode[static_cast<std::uint8_t>(mode)] =
        build_gateway_lists(compiler, telematics_nodes, mode);
  }
  config.default_lists =
      build_gateway_lists(compiler, telematics_nodes, CarMode::kNormal);
  return config;
}

SegmentedVehicle::SegmentedVehicle(sim::Scheduler& sched,
                                   SegmentedConfig config, sim::Trace* trace)
    : sched_(sched),
      control_bus_(sched, can::kBitRate500k, trace, config.seed),
      telematics_bus_(sched, can::kBitRate125k, trace, config.seed ^ 0x7),
      policy_(full_policy(connected_car_threat_model(), config.policy_version)) {
  // Telematics bus is the attacker-facing segment (a = telematics); the
  // bridge forwards a->b toward the control bus.
  bridge_ = std::make_unique<hpe::Bridge>(
      sched_, telematics_bus_, control_bus_,
      build_gateway_config(telematics_nodes(), policy_), "gateway", trace);

  std::uint64_t salt = 0x40;
  // Control segment.
  mode_master_ = std::make_unique<GatewayNode>(
      sched_, control_bus_.attach("mode-master"), trace, config.seed ^ salt++);
  ecu_ = std::make_unique<EvEcuNode>(sched_, control_bus_.attach("ecu"), trace,
                                     config.seed ^ salt++);
  eps_ = std::make_unique<EpsNode>(sched_, control_bus_.attach("eps"), trace,
                                   config.seed ^ salt++);
  engine_ = std::make_unique<EngineNode>(sched_, control_bus_.attach("engine"),
                                         trace, config.seed ^ salt++);
  sensors_ = std::make_unique<SensorNode>(
      sched_, control_bus_.attach("sensors"), trace, config.seed ^ salt++);
  doors_ = std::make_unique<DoorLockNode>(
      sched_, control_bus_.attach("doors"), trace, config.seed ^ salt++);
  safety_ = std::make_unique<SafetyCriticalNode>(
      sched_, control_bus_.attach("safety"), trace, config.seed ^ salt++);
  // Telematics segment.
  connectivity_ = std::make_unique<ConnectivityNode>(
      sched_, telematics_bus_.attach("connectivity"), trace,
      config.seed ^ salt++);
  infotainment_ = std::make_unique<InfotainmentNode>(
      sched_, telematics_bus_.attach("infotainment"), trace,
      config.seed ^ salt++);

  if (config.initial_mode != CarMode::kNormal) {
    mode_master_->change_mode(config.initial_mode);
  }
}

}  // namespace psme::car
