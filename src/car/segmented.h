// psme::car — segmented vehicle network with a policy gateway.
//
// Production vehicles separate the externally-reachable telematics domain
// (infotainment, cellular modem) from the control domain (ECU, EPS,
// engine, locks, safety, sensors) and join them through a gateway — the
// countermeasure the paper quotes as "CAN bus gateway: Limit components
// with CAN bus access". SegmentedVehicle builds that topology with a
// psme::hpe::Bridge whose per-direction, per-mode forwarding lists are
// *derived from the same policy set* as the HPE filters:
//
//   telematics -> control : command ids of assets some telematics-hosted
//                           entry point may write in the current mode;
//   control -> telematics : status ids of assets some telematics-hosted
//                           entry point may read, plus structural frames.
//
// The control segment's attack surface toward a compromised telematics
// domain is thereby exactly the policy's write closure — measured by
// bench_segmentation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "can/bus.h"
#include "car/base_policy.h"
#include "car/components.h"
#include "car/policy_binding.h"
#include "car/table1.h"
#include "hpe/bridge.h"

namespace psme::car {

/// Forwarding lists for the gateway in one mode, compiled through
/// `compiler` (shared memoisation with any other lists built from it).
/// `telematics_nodes` are the vehicle nodes on the telematics segment.
[[nodiscard]] hpe::BridgeLists build_gateway_lists(
    BindingCompiler& compiler,
    const std::vector<std::string>& telematics_nodes, CarMode mode);

/// Convenience overload compiling against `policy` directly.
[[nodiscard]] hpe::BridgeLists build_gateway_lists(
    const std::vector<std::string>& telematics_nodes, CarMode mode,
    const core::PolicySet& policy);

/// Full gateway configuration across all modes (one shared compiler, so
/// the per-mode list builds reuse each other's policy verdicts).
[[nodiscard]] hpe::BridgeConfig build_gateway_config(
    const std::vector<std::string>& telematics_nodes,
    const core::PolicySet& policy);

struct SegmentedConfig {
  CarMode initial_mode = CarMode::kNormal;
  std::uint64_t seed = 42;
  std::uint64_t policy_version = 1;
};

/// Two-segment topology: control bus (gateway node, ECU, EPS, engine,
/// sensors, doors, safety) and telematics bus (connectivity,
/// infotainment), joined by the policy gateway. Node behaviour classes are
/// identical to the flat Vehicle — segmentation is purely topological.
class SegmentedVehicle {
 public:
  explicit SegmentedVehicle(sim::Scheduler& sched, SegmentedConfig config = {},
                            sim::Trace* trace = nullptr);

  SegmentedVehicle(const SegmentedVehicle&) = delete;
  SegmentedVehicle& operator=(const SegmentedVehicle&) = delete;

  [[nodiscard]] can::Bus& control_bus() noexcept { return control_bus_; }
  [[nodiscard]] can::Bus& telematics_bus() noexcept { return telematics_bus_; }
  [[nodiscard]] hpe::Bridge& gateway() noexcept { return *bridge_; }

  [[nodiscard]] GatewayNode& mode_master() noexcept { return *mode_master_; }
  [[nodiscard]] EvEcuNode& ecu() noexcept { return *ecu_; }
  [[nodiscard]] EpsNode& eps() noexcept { return *eps_; }
  [[nodiscard]] EngineNode& engine() noexcept { return *engine_; }
  [[nodiscard]] SensorNode& sensors() noexcept { return *sensors_; }
  [[nodiscard]] DoorLockNode& doors() noexcept { return *doors_; }
  [[nodiscard]] SafetyCriticalNode& safety() noexcept { return *safety_; }
  [[nodiscard]] ConnectivityNode& connectivity() noexcept { return *connectivity_; }
  [[nodiscard]] InfotainmentNode& infotainment() noexcept { return *infotainment_; }

  void set_mode(CarMode mode) { mode_master_->change_mode(mode); }
  [[nodiscard]] const core::PolicySet& policy() const noexcept { return policy_; }

  /// Attaches a rogue device to the *telematics* segment (the realistic
  /// remote-attacker foothold: a compromised head unit or dongle).
  [[nodiscard]] can::Port& attach_telematics_attacker(const std::string& name) {
    return telematics_bus_.attach(name);
  }

  /// The telematics-side node names.
  [[nodiscard]] static std::vector<std::string> telematics_nodes() {
    return {"connectivity", "infotainment"};
  }

 private:
  sim::Scheduler& sched_;
  can::Bus control_bus_;
  can::Bus telematics_bus_;
  core::PolicySet policy_;
  std::unique_ptr<hpe::Bridge> bridge_;

  std::unique_ptr<GatewayNode> mode_master_;
  std::unique_ptr<EvEcuNode> ecu_;
  std::unique_ptr<EpsNode> eps_;
  std::unique_ptr<EngineNode> engine_;
  std::unique_ptr<SensorNode> sensors_;
  std::unique_ptr<DoorLockNode> doors_;
  std::unique_ptr<SafetyCriticalNode> safety_;
  std::unique_ptr<ConnectivityNode> connectivity_;
  std::unique_ptr<InfotainmentNode> infotainment_;
};

}  // namespace psme::car
