#include "car/table1.h"

#include "car/ids.h"

namespace psme::car {

const std::vector<Table1Row>& table1_rows() {
  static const std::vector<Table1Row> rows = {
      {"T01", asset::kEvEcu,
       {entry::kDoorLocks, entry::kSafetyCritical},
       "Spoofed data over CANbus causing disablement of ECU", "STD",
       "8,5,4,6,4 (5.4)", "R",
       {CarMode::kNormal}},
      {"T02", asset::kEvEcu,
       {entry::kSensors},
       "Spoofed data over CANbus causing disablement of ECU", "STD",
       "8,5,4,6,4 (5.4)", "R",
       {CarMode::kNormal}},
      {"T03", asset::kEvEcu,
       {entry::kConnectivity},
       "Disabled remote tracking system after theft", "SD", "6,3,3,6,4 (4.4)",
       "RW",
       {CarMode::kNormal}},
      {"T04", asset::kEvEcu,
       {entry::kConnectivity},
       "Fail-safe protection override to reactivate vehicle", "STE",
       "5,5,5,7,6 (5.6)", "R",
       {CarMode::kFailSafe}},
      {"T05", asset::kEps,
       {entry::kAnyNode},
       "EPS deactivation through compromised CAN node", "STD",
       "5,5,5,6,7 (5.6)", "R",
       {CarMode::kNormal}},
      {"T06", asset::kEngine,
       {entry::kSensors},
       "Deactivation through compromised sensor", "STD", "6,5,4,7,5 (5.4)",
       "R",
       {CarMode::kNormal}},
      {"T07", asset::kConnectivity,
       {entry::kEvEcu, entry::kSensors},
       "Critical component modification during operation", "STIDE",
       "7,5,5,9,4 (6.0)", "R",
       {CarMode::kNormal, CarMode::kRemoteDiagnostic}},
      {"T08", asset::kConnectivity,
       {entry::kInfotainment},
       "Privacy attack using modified radio firmware", "TIE",
       "7,5,5,6,5 (5.6)", "R",
       {CarMode::kNormal, CarMode::kRemoteDiagnostic}},
      {"T09", asset::kConnectivity,
       {entry::kEmergency, entry::kDoorLocks},
       "Prevent operation of fail-safe comms by disabling modem", "TDE",
       "6,6,7,8,6 (6.6)", "RW",
       {CarMode::kFailSafe}},
      {"T10", asset::kConnectivity,
       {entry::kSensors, entry::kAirbags},
       "Prevent operation of fail-safe comms by disabling modem", "TDE",
       "6,6,7,8,6 (6.6)", "R",
       {CarMode::kFailSafe}},
      {"T11", asset::kInfotainment,
       {entry::kMediaBrowser},
       "Exploit to gain access to higher control level", "STE",
       "7,5,6,8,6 (6.4)", "R",
       {CarMode::kNormal}},
      {"T12", asset::kInfotainment,
       {entry::kSensors, entry::kEvEcu},
       "Modification of car status values, GPS, speed, etc", "STR",
       "3,5,6,4,5 (4.6)", "R",
       {CarMode::kNormal}},
      {"T13", asset::kDoorLocks,
       {entry::kConnectivity, entry::kManualOpen},
       "Unlock attempt while in motion", "TDE", "8,5,3,8,5 (5.8)", "R",
       {CarMode::kNormal}},
      {"T14", asset::kDoorLocks,
       {entry::kConnectivity, entry::kSafetyCritical},
       "Lock mechanism triggered during accident", "TDE", "8,6,7,8,5 (6.8)",
       "W",
       {CarMode::kFailSafe}},
      {"T15", asset::kSafetyCritical,
       {entry::kSensors},
       "False triggering of fail-safe mode to unlock vehicle", "STE",
       "7,4,5,8,4 (5.6)", "R",
       {CarMode::kNormal}},
      {"T16", asset::kSafetyCritical,
       {entry::kSensors},
       "Disable alarm and locking system to allow theft", "TE",
       "9,4,5,9,4 (6.2)", "W",
       {CarMode::kNormal}},
  };
  return rows;
}

namespace {

threat::ThreatModelBuilder car_builder() {
  using threat::Asset;
  using threat::AssetId;
  using threat::Criticality;
  using threat::EntryPoint;
  using threat::EntryPointId;
  using threat::Mode;

  threat::ThreatModelBuilder builder("connected-car");

  builder.add_asset(Asset{AssetId{asset::kEvEcu},
                          "EV-ECU (accel, brake, transmission)",
                          "Electronic vehicle control unit governing "
                          "propulsion, braking and transmission",
                          Criticality::kSafety});
  builder.add_asset(Asset{AssetId{asset::kEps}, "EPS (Steering)",
                          "Electronic power steering", Criticality::kSafety});
  builder.add_asset(Asset{AssetId{asset::kEngine}, "Engine",
                          "Engine management", Criticality::kSafety});
  builder.add_asset(Asset{AssetId{asset::kConnectivity}, "3G/4G/WiFi",
                          "Cellular and WiFi connectivity: telemetry upload, "
                          "firmware update, emergency services notification",
                          Criticality::kOperational});
  builder.add_asset(Asset{AssetId{asset::kInfotainment}, "Infotainment System",
                          "Media, navigation and status display",
                          Criticality::kConvenience});
  builder.add_asset(Asset{AssetId{asset::kDoorLocks}, "Door locks",
                          "Central locking", Criticality::kSafety});
  builder.add_asset(Asset{AssetId{asset::kSafetyCritical}, "Safety Critical",
                          "Alarm, airbags and fail-safe supervision",
                          Criticality::kSafety});
  builder.add_asset(Asset{AssetId{asset::kSensors}, "Sensors",
                          "Acceleration, brake, speed and proximity sensors",
                          Criticality::kOperational});

  builder.add_entry_point(EntryPoint{EntryPointId{entry::kDoorLocks},
                                     "Door locks", "Central locking nodes",
                                     false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kSafetyCritical},
                                     "Safety critical",
                                     "Alarm/airbag/fail-safe nodes", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kSensors}, "Sensors",
                                     "Accel/brake/speed/proximity sensors",
                                     false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kConnectivity},
                                     "3G/4G/WiFi",
                                     "Cellular/WiFi modem (remote)", true});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kInfotainment},
                                     "Infotainment system",
                                     "Head unit and its applications", true});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kMediaBrowser},
                                     "Media player browser",
                                     "Browser app inside the head unit", true});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kEmergency},
                                     "Emergency",
                                     "Emergency-call subsystem", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kAirbags}, "Air bags",
                                     "Airbag deployment units", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kEvEcu}, "EV-ECU",
                                     "Vehicle control unit acting as source",
                                     false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kEps}, "EPS",
                                     "Power steering node", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kEngine}, "Engine",
                                     "Engine management node", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kManualOpen},
                                     "Manual open",
                                     "Physical door handle / key", false});
  builder.add_entry_point(EntryPoint{EntryPointId{entry::kAnyNode}, "Any node",
                                     "Any CAN node on the shared bus", false});

  for (CarMode m : kAllModes) {
    std::string description;
    switch (m) {
      case CarMode::kNormal:
        description = "Standard vehicle functionality (driving, parked)";
        break;
      case CarMode::kRemoteDiagnostic:
        description = "Maintenance by manufacturer or authorised engineer";
        break;
      case CarMode::kFailSafe:
        description = "Reserved for emergency situations";
        break;
    }
    builder.add_mode(Mode{mode_id(m), std::string(to_string(m)), description});
  }
  return builder;
}

}  // namespace

threat::ThreatModel connected_car_threat_model() {
  threat::ThreatModelBuilder builder = car_builder();

  for (const Table1Row& row : table1_rows()) {
    threat::Threat t;
    t.id = threat::ThreatId{row.threat_id};
    t.title = row.threat;
    t.description = row.threat;
    t.asset = threat::AssetId{row.asset};
    for (const auto& ep : row.entry_points) {
      t.entry_points.push_back(threat::EntryPointId{ep});
    }
    for (CarMode m : row.modes) t.modes.push_back(mode_id(m));
    t.stride = threat::StrideSet::parse(row.stride);
    t.dread = threat::DreadScore::parse(row.dread);
    t.recommended_policy = threat::parse_permission(row.policy);
    t.countermeasures.push_back(threat::Countermeasure{
        threat::CountermeasureKind::kPolicy,
        "Restrict " + row.entry_points.front() + " to " + row.policy + " of " +
            row.asset + " via policy engine",
        t.recommended_policy});
    builder.add_threat(std::move(t));
  }
  return builder.build();
}

}  // namespace psme::car
