#include "car/network_mgmt.h"

#include <stdexcept>
#include <string>

namespace psme::car::nm {

using namespace std::chrono_literals;

std::string_view to_string(NmState state) noexcept {
  switch (state) {
    case NmState::kOff: return "off";
    case NmState::kLogin: return "login";
    case NmState::kOn: return "on";
    case NmState::kLimpHome: return "limp-home";
    case NmState::kSleep: return "sleep";
  }
  return "?";
}

can::Frame make_nm_frame(std::uint8_t source, std::uint8_t dest,
                         std::uint8_t opcode) {
  if (source > kMaxAddress || dest > kMaxAddress) {
    throw std::out_of_range("nm: address exceeds the 5-bit NM address space");
  }
  const std::uint8_t payload[2] = {dest, opcode};
  return can::Frame(can::CanId::standard(kNmBase | source), payload);
}

std::optional<NmInfo> parse_nm_frame(const can::Frame& frame) {
  if (frame.id().is_extended()) return std::nullopt;
  const std::uint32_t raw = frame.id().raw();
  if ((raw & ~static_cast<std::uint32_t>(kMaxAddress)) != kNmBase) {
    return std::nullopt;
  }
  if (frame.dlc() < 2) return std::nullopt;
  NmInfo info;
  info.source = static_cast<std::uint8_t>(raw & kMaxAddress);
  info.dest = frame.data()[0];
  info.opcode = frame.data()[1];
  return info;
}

NmParticipant::NmParticipant(sim::Scheduler& sched, can::Channel& channel,
                             std::uint8_t address, NmOptions options,
                             sim::Trace* trace)
    : can::Node(sched, channel, "nm-" + std::to_string(address), trace,
                0x4E4DULL ^ address),
      address_(address),
      options_(options) {
  if (address > kMaxAddress) {
    throw std::out_of_range("nm: address exceeds the 5-bit NM address space");
  }
  members_.insert(address_);
  // Only the NM id window reaches this station's application layer.
  controller().set_filters({can::AcceptanceFilter{
      ~static_cast<std::uint32_t>(kMaxAddress) & can::CanId::kMaxStandard,
      kNmBase, false}});
}

void NmParticipant::start() {
  if (state_ != NmState::kOff) return;
  state_ = NmState::kLogin;
  last_rx_ = scheduler().now();
  last_token_ = scheduler().now();
  send_alive();
  // Offer a first token so circulation can start once a peer logs in. The
  // bus never echoes the sender's own frames, so this cannot sustain a
  // one-member ring — a peerless station degrades to limp home instead.
  pending_pass_ = scheduler().schedule_in(
      options_.typ_delay, [this] { pass_token(); }, "nm.bootstrap");
  supervision_ = std::make_unique<sim::PeriodicTask>(
      scheduler(), scheduler().now() + options_.poll_period,
      options_.poll_period, [this] { supervise(); }, "nm.supervise");
}

void NmParticipant::send_alive() {
  std::uint8_t opcode = kOpAlive;
  if (options_.ready_to_sleep) opcode |= kSleepInd;
  ++stats_.alive_sent;
  send(make_nm_frame(address_, address_, opcode));
}

std::uint8_t NmParticipant::successor() const noexcept {
  // Logical ring: the next higher known address, wrapping at the top.
  auto it = members_.upper_bound(address_);
  if (it == members_.end()) it = members_.begin();
  return *it;
}

bool NmParticipant::ring_ready_to_sleep() const noexcept {
  if (!options_.ready_to_sleep) return false;
  for (const std::uint8_t member : members_) {
    if (member == address_) continue;
    const auto it = member_sleep_ind_.find(member);
    if (it == member_sleep_ind_.end() || !it->second) return false;
  }
  return true;
}

void NmParticipant::pass_token() {
  pending_pass_ = 0;
  if (state_ == NmState::kOff || state_ == NmState::kSleep ||
      state_ == NmState::kLimpHome) {
    return;
  }
  std::uint8_t opcode = kOpRing;
  if (options_.ready_to_sleep) {
    opcode |= kSleepInd;
    if (ring_ready_to_sleep()) opcode |= kSleepAck;
  }
  ++stats_.ring_sent;
  send(make_nm_frame(address_, successor(), opcode));
  if (opcode & kSleepAck) {
    // Sleep agreed: the acknowledging station sleeps with the ring.
    state_ = NmState::kSleep;
    ++stats_.sleeps_entered;
  }
}

void NmParticipant::supervise() {
  if (state_ == NmState::kOff || state_ == NmState::kSleep) return;
  const sim::SimTime now = scheduler().now();

  if (state_ == NmState::kLimpHome) {
    // Degraded station: keep beaconing so diagnosis can find it; a token
    // addressed to it (see handle_frame) recovers it into the ring.
    send(make_nm_frame(address_, address_, kOpLimpHome));
    return;
  }

  if (now - last_rx_ > options_.max_silence) {
    // Whole-ring silence: reconfigure by re-asserting presence.
    ++stats_.silence_timeouts;
    ++supervision_failures_;
    last_rx_ = now;
    send_alive();
  } else if (state_ == NmState::kOn &&
             now - last_token_ > options_.token_wait) {
    // NM traffic flows but the token never reaches us: we are being
    // skipped (phantom ring or deliberate starvation).
    ++stats_.skipped_detections;
    ++supervision_failures_;
    last_token_ = now;
    send_alive();
  }

  if (supervision_failures_ >= options_.limp_limit) enter_limp_home();
}

void NmParticipant::enter_limp_home() {
  if (state_ == NmState::kLimpHome) return;
  state_ = NmState::kLimpHome;
  ++stats_.limp_home_entries;
  supervision_failures_ = 0;
  send(make_nm_frame(address_, address_, kOpLimpHome));
}

void NmParticipant::handle_frame(const can::Frame& frame, sim::SimTime at) {
  const auto info = parse_nm_frame(frame);
  if (!info.has_value()) return;
  if (state_ == NmState::kOff) return;

  if (info->source == address_) {
    // The bus never echoes a station's own frames back at it, so any frame
    // under our source address was forged by someone else. Answer with
    // alive: the ring must keep seeing the real station.
    ++stats_.impersonations_detected;
    send_alive();
    return;
  }

  last_rx_ = at;
  members_.insert(info->source);
  member_sleep_ind_[info->source] = (info->opcode & kSleepInd) != 0;

  if (state_ == NmState::kSleep) {
    // Any NM traffic wakes the bus.
    state_ = NmState::kOn;
    ++stats_.wakeups;
    send_alive();
    return;
  }

  if (info->opcode & kSleepAck) {
    if (options_.ready_to_sleep) {
      state_ = NmState::kSleep;
      ++stats_.sleeps_entered;
      if (pending_pass_ != 0) {
        scheduler().cancel(pending_pass_);
        pending_pass_ = 0;
      }
    } else {
      // Vehicle still active here: refuse, and keep the ring awake by
      // re-asserting presence without the sleep indication.
      ++stats_.sleep_refusals;
      send_alive();
    }
    return;
  }

  if ((info->opcode & kOpRing) && info->dest == address_) {
    ++stats_.tokens_received;
    last_token_ = at;
    supervision_failures_ = 0;
    if (state_ == NmState::kLogin) {
      state_ = NmState::kOn;
    } else if (state_ == NmState::kLimpHome) {
      state_ = NmState::kOn;
      ++stats_.limp_home_recoveries;
    }
    if (pending_pass_ != 0) scheduler().cancel(pending_pass_);
    pending_pass_ = scheduler().schedule_in(
        options_.typ_delay, [this] { pass_token(); }, "nm.pass");
  }
}

}  // namespace psme::car::nm
