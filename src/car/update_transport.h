// psme::car — the OTA artefact transport, with injectable faults.
//
// The campaign orchestrator (car/campaign.h) never hands bytes to a
// vehicle directly: every transfer goes through an UpdateTransport, the
// seam where the real world's failure modes live. The production
// implementation would be a radio link; here the two simulation
// implementations are a lossless reference (PerfectTransport) and a
// deterministic fault injector (FaultyTransport) driven by a
// sim::FaultPlan — drops, truncations, byte corruptions, stalls, dark
// vehicles and power-loss-before-commit, each a pure function of
// (seed, vehicle, attempt) so a campaign replays bit-identically.
//
// Contract notes for implementors:
//  * Truncation and corruption are DELIVERED damage: the receiver gets
//    bytes and must discover the defect through validation (that is the
//    trust boundary the wire formats defend; the campaign tests pin that
//    every injected damage earns a clean rejection, never UB).
//  * A drop or a stall delivers nothing; the receiver discovers it only
//    by its stage timeout expiring.
//  * kDark is sticky per vehicle: once a transport answers dark for a
//    vehicle it must keep answering dark (FaultyTransport derives
//    darkness from the fault stream's first dark decision and remembers
//    it).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/fault_plan.h"

namespace psme::car {

enum class DeliveryStatus : std::uint8_t {
  kDelivered,  // payload arrived (possibly damaged — validate it!)
  kLost,       // nothing will arrive (drop or stall); timeout discovers it
  kDark,       // the vehicle is unreachable, now and for this campaign
};

struct Delivery {
  DeliveryStatus status = DeliveryStatus::kDelivered;
  /// The fault the plan injected into this transfer (kNone for a clean
  /// delivery) — telemetry for campaign reports and tests; a real
  /// receiver obviously never sees this field.
  sim::FaultKind injected = sim::FaultKind::kNone;
  /// The received bytes (kDelivered only; empty otherwise).
  std::vector<std::byte> payload;
};

class UpdateTransport {
 public:
  virtual ~UpdateTransport() = default;

  /// Transfers `artefact` to `vehicle` as transfer attempt `attempt`.
  virtual Delivery send(std::uint32_t vehicle, std::uint32_t attempt,
                        std::span<const std::byte> artefact) = 0;

  /// Whether `vehicle` loses power after validating attempt `attempt`
  /// but before the sealed-store commit completes. Default: never.
  [[nodiscard]] virtual bool power_loss_before_commit(
      std::uint32_t vehicle, std::uint32_t attempt) const {
    (void)vehicle;
    (void)attempt;
    return false;
  }
};

/// Lossless reference transport: every send delivers an intact copy.
class PerfectTransport final : public UpdateTransport {
 public:
  Delivery send(std::uint32_t vehicle, std::uint32_t attempt,
                std::span<const std::byte> artefact) override;
};

/// Deterministic fault-injecting transport over a sim::FaultPlan.
class FaultyTransport final : public UpdateTransport {
 public:
  /// Cumulative injection telemetry (what the plan actually did across
  /// the campaign — the bench and the reports surface it).
  struct Counters {
    std::uint64_t sent = 0;
    std::uint64_t delivered_clean = 0;
    std::uint64_t dropped = 0;
    std::uint64_t truncated = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t stalled = 0;
    std::uint64_t dark = 0;
    std::uint64_t bytes_sent = 0;  // payload bytes leaving the server
  };

  explicit FaultyTransport(sim::FaultPlan plan) : plan_(std::move(plan)) {}

  Delivery send(std::uint32_t vehicle, std::uint32_t attempt,
                std::span<const std::byte> artefact) override;

  [[nodiscard]] bool power_loss_before_commit(
      std::uint32_t vehicle, std::uint32_t attempt) const override {
    return plan_.power_loss_before_commit(vehicle, attempt);
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }
  [[nodiscard]] const sim::FaultPlan& plan() const noexcept { return plan_; }

 private:
  sim::FaultPlan plan_;
  Counters counters_;
  /// Vehicles the fault stream has sent dark — sticky for the
  /// transport's lifetime (a campaign).
  std::unordered_set<std::uint32_t> dark_;
};

}  // namespace psme::car
