// psme::car::nm — OSEK/VDX-style direct network management on the CAN bus.
//
// Production ECUs coordinate sleep/wake through OSEK NM 2.5.3: every
// station owns a node address, NM frames ride CAN id (base | address),
// stations form a LOGICAL RING by address order and circulate a token
// (ringmsg), a station that cannot reach the ring degrades to LIMP HOME,
// and bus sleep is negotiated with sleep.ind / sleep.ack bits piggybacked
// on ring messages (exemplar: the revag-nm tooling referenced in
// SNIPPETS.md — OFF/LOGIN/ON/LIMPHOME states, 0x420 | node id).
//
// The protocol is a first-class ATTACK SURFACE: forged alive frames under
// a victim's address (impersonation), forged sleep.ack frames that try to
// talk the ring into sleeping while the vehicle is active, and phantom
// rings that starve real members of the token until they fall into limp
// home. This module models just enough of the state machine for those
// abuse families to be generated, detected and measured — each
// participant keeps protocol-level security counters (own-address frames
// seen, sleep requests refused, token starvation, limp-home entries) that
// the adversarial campaign engine reads as detection/denial evidence.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string_view>

#include "can/node.h"
#include "sim/event_queue.h"

namespace psme::car::nm {

/// NM frames occupy a dedicated id window: id = kNmBase | source address.
/// The address space is 5-bit so the window is exactly [0x420, 0x43F] —
/// a 6-bit space would collide with bit 5 of the base id itself.
inline constexpr std::uint32_t kNmBase = 0x420;
inline constexpr std::uint8_t kMaxAddress = 0x1F;  // 5-bit address space

/// Payload layout (2 bytes): [destination address, opcode bits].
inline constexpr std::uint8_t kOpAlive = 0x01;     // joining / re-asserting
inline constexpr std::uint8_t kOpRing = 0x02;      // the circulating token
inline constexpr std::uint8_t kOpLimpHome = 0x04;  // degraded-station beacon
inline constexpr std::uint8_t kSleepInd = 0x10;    // "I am ready to sleep"
inline constexpr std::uint8_t kSleepAck = 0x20;    // "everyone is; sleep now"

enum class NmState : std::uint8_t {
  kOff,       // not started
  kLogin,     // alive sent, waiting for first token
  kOn,        // full ring member
  kLimpHome,  // cannot hold the ring; periodic limp-home beacon
  kSleep,     // bus sleep agreed
};

[[nodiscard]] std::string_view to_string(NmState state) noexcept;

/// Builds an NM frame from `source` with the given destination/opcode.
/// Throws std::out_of_range when either address exceeds kMaxAddress.
[[nodiscard]] can::Frame make_nm_frame(std::uint8_t source,
                                       std::uint8_t dest,
                                       std::uint8_t opcode);

/// A parsed NM frame.
struct NmInfo {
  std::uint8_t source = 0;
  std::uint8_t dest = 0;
  std::uint8_t opcode = 0;
};

/// Parses an NM frame; nullopt when the id is outside the NM window or the
/// payload is short.
[[nodiscard]] std::optional<NmInfo> parse_nm_frame(const can::Frame& frame);

struct NmOptions {
  /// Delay between receiving the token and passing it on (T_Typ).
  sim::SimDuration typ_delay = std::chrono::milliseconds{40};
  /// Poll granularity of the supervision timers.
  sim::SimDuration poll_period = std::chrono::milliseconds{50};
  /// Max NM silence before a station re-asserts itself with alive (T_Max).
  sim::SimDuration max_silence = std::chrono::milliseconds{400};
  /// Max time without being ADDRESSED by the token before a station
  /// considers itself skipped (phantom ring / starvation detection).
  sim::SimDuration token_wait = std::chrono::milliseconds{700};
  /// Consecutive supervision failures before degrading to limp home.
  std::uint32_t limp_limit = 3;
  /// Station advertises readiness to sleep in its ring messages.
  bool ready_to_sleep = false;
};

/// Protocol and security counters of one participant.
struct NmStats {
  std::uint64_t alive_sent = 0;
  std::uint64_t ring_sent = 0;
  std::uint64_t tokens_received = 0;
  /// Frames carrying THIS station's source address that it did not send —
  /// on a broadcast bus a station never hears its own frames, so every one
  /// of these is an impersonation attempt (OSEK: the skipped station
  /// answers with alive, re-asserting ring membership).
  std::uint64_t impersonations_detected = 0;
  /// sleep.ack frames refused because this station was not ready.
  std::uint64_t sleep_refusals = 0;
  /// Supervision: token starvation events (addressed-by-ring timeout).
  std::uint64_t skipped_detections = 0;
  /// Supervision: whole-ring silence timeouts.
  std::uint64_t silence_timeouts = 0;
  std::uint64_t limp_home_entries = 0;
  std::uint64_t limp_home_recoveries = 0;
  std::uint64_t sleeps_entered = 0;
  std::uint64_t wakeups = 0;
};

/// One NM station. Attach to a raw bus port; the controller's acceptance
/// filter is narrowed to the NM id window so the station coexists with
/// application traffic without seeing it.
class NmParticipant final : public can::Node {
 public:
  /// Throws std::out_of_range when `address` exceeds kMaxAddress.
  NmParticipant(sim::Scheduler& sched, can::Channel& channel,
                std::uint8_t address, NmOptions options = {},
                sim::Trace* trace = nullptr);

  /// kOff -> kLogin: broadcast alive, start ring supervision, and offer a
  /// first token so a second station can join the circulation. A station
  /// with no peers degrades to limp home (the bus never echoes its own
  /// frames back, so a one-member ring cannot sustain itself).
  void start();

  [[nodiscard]] NmState state() const noexcept { return state_; }
  [[nodiscard]] std::uint8_t address() const noexcept { return address_; }
  [[nodiscard]] const NmStats& stats() const noexcept { return stats_; }
  /// Addresses this station currently believes are ring members (learned
  /// from observed NM traffic; always contains the own address).
  [[nodiscard]] const std::set<std::uint8_t>& members() const noexcept {
    return members_;
  }

  void set_ready_to_sleep(bool ready) noexcept {
    options_.ready_to_sleep = ready;
  }

 protected:
  void handle_frame(const can::Frame& frame, sim::SimTime at) override;

 private:
  void send_alive();
  void pass_token();
  void supervise();
  void enter_limp_home();
  [[nodiscard]] std::uint8_t successor() const noexcept;
  /// True when every known member's last NM frame carried sleep.ind.
  [[nodiscard]] bool ring_ready_to_sleep() const noexcept;

  std::uint8_t address_;
  NmOptions options_;
  NmState state_ = NmState::kOff;
  NmStats stats_;

  std::set<std::uint8_t> members_;
  std::map<std::uint8_t, bool> member_sleep_ind_;
  sim::SimTime last_rx_{};     // last NM frame from any station
  sim::SimTime last_token_{};  // last token addressed to this station
  std::uint32_t supervision_failures_ = 0;
  sim::EventId pending_pass_ = 0;
  std::unique_ptr<sim::PeriodicTask> supervision_;
};

}  // namespace psme::car::nm
