#include "hpe/bridge.h"

namespace psme::hpe {
using can::Bus;
using can::Controller;
using can::Frame;
using can::FrameSink;
using can::Port;

std::string_view to_string(BridgeDirection d) noexcept {
  return d == BridgeDirection::kAToB ? "a->b" : "b->a";
}

Bridge::Bridge(sim::Scheduler& sched, Bus& bus_a, Bus& bus_b,
               BridgeConfig config, std::string name, sim::Trace* trace)
    : sched_(sched),
      config_(std::move(config)),
      name_(std::move(name)),
      trace_(trace),
      side_a_(*this, BridgeDirection::kAToB),
      side_b_(*this, BridgeDirection::kBToA),
      port_a_(bus_a.attach(name_ + ".a")),
      port_b_(bus_b.attach(name_ + ".b")),
      ctrl_a_(sched, port_a_, name_ + ".a", trace),
      ctrl_b_(sched, port_b_, name_ + ".b", trace) {
  refresh_active_lists();
  // The controllers own the ports' sinks; route their RX paths into the
  // forwarding logic. (Controller delivers accepted frames to its handler;
  // default accept-all filters make the bridge transparent at this layer.)
  ctrl_a_.set_rx_handler([this](const Frame& f, sim::SimTime at) {
    side_a_.on_frame(f, at);
  });
  ctrl_b_.set_rx_handler([this](const Frame& f, sim::SimTime at) {
    side_b_.on_frame(f, at);
  });
}

void Bridge::refresh_active_lists() noexcept {
  const auto it = config_.per_mode.find(mode_);
  active_ = it == config_.per_mode.end() ? &config_.default_lists : &it->second;
}

void Bridge::set_mode(std::uint8_t mode) noexcept {
  if (mode_ != mode) {
    mode_ = mode;
    ++stats_.mode_switches;
    refresh_active_lists();
  }
}

void Bridge::forward(const Frame& frame, BridgeDirection direction,
                     sim::SimTime at) {
  // Mode snooping first: mode frames are structural and always forwarded.
  const bool is_mode_frame = config_.mode_frame_id.has_value() &&
                             !frame.id().is_extended() &&
                             frame.id().raw() == *config_.mode_frame_id;
  if (is_mode_frame && frame.dlc() >= 1) set_mode(frame.byte0());

  bool allowed = is_mode_frame;
  if (!allowed) {
    const BridgeLists& lists = active_lists();
    const hpe::ApprovedIdList& list = direction == BridgeDirection::kAToB
                                          ? lists.a_to_b
                                          : lists.b_to_a;
    allowed = list.contains(frame.id());
  }

  Controller& out =
      direction == BridgeDirection::kAToB ? ctrl_b_ : ctrl_a_;
  if (allowed) {
    out.transmit(frame);
    if (direction == BridgeDirection::kAToB) {
      ++stats_.forwarded_a_to_b;
    } else {
      ++stats_.forwarded_b_to_a;
    }
    return;
  }
  if (direction == BridgeDirection::kAToB) {
    ++stats_.dropped_a_to_b;
  } else {
    ++stats_.dropped_b_to_a;
  }
  if (trace_ != nullptr) {
    trace_->record(at, sim::TraceLevel::kSecurity, "bridge." + name_,
                   std::string(to_string(direction)) + " dropped " +
                       frame.id().to_string());
  }
}

}  // namespace psme::hpe
