// psme::hpe — the hardware-based policy engine (paper Fig. 4).
//
// The HPE sits between a node's CAN controller and the bus, exactly where
// Fig. 4 places it: a *reading filter* screens frames arriving from the
// bus and a *writing filter* screens frames the node tries to send. Each
// filter consults an approved message-ID list through the decision block,
// which "either grants or blocks the access".
//
// Properties reproduced from the paper:
//  * transparency — the HPE implements can::Channel, so node software
//    (the Controller) cannot tell whether it is present;
//  * inside-attack curtailment — the writing filter stops a compromised
//    node from emitting unapproved IDs;
//  * outside-attack curtailment — the reading filter stops unapproved IDs
//    from reaching the node even if the node's own software filter was
//    reprogrammed by an attacker;
//  * tamper resistance — after lock(), lists change only through an
//    authenticated policy update (cf. software filters, which any firmware
//    compromise can rewrite).
//
// Mode awareness: the engine optionally snoops a designated mode-change
// broadcast frame and switches between per-mode list pairs without any
// software involvement, supporting Table I's mode-conditional policies.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "can/channel.h"
#include "core/update.h"
#include "hpe/approved_list.h"
#include "sim/time.h"
#include "sim/trace.h"

namespace psme::hpe {

enum class Direction : std::uint8_t { kRead, kWrite };

[[nodiscard]] std::string_view to_string(Direction d) noexcept;

/// One audit record emitted by the decision block for a blocked frame.
struct AuditRecord {
  sim::SimTime at{};
  Direction direction = Direction::kRead;
  can::CanId id;
  std::uint8_t mode = 0;
};

struct HpeStats {
  std::uint64_t read_granted = 0;
  std::uint64_t read_blocked = 0;
  std::uint64_t write_granted = 0;
  std::uint64_t write_blocked = 0;
  std::uint64_t mode_switches = 0;
  std::uint64_t tamper_attempts = 0;  // rejected runtime modifications

  [[nodiscard]] std::uint64_t total_blocked() const noexcept {
    return read_blocked + write_blocked;
  }
};

/// Fine-grained content rule (the paper's "more complex policies such as
/// behavioural or situational based policies"): frames carrying `id` must
/// have payload byte `byte_index` within [min, max] or they are blocked
/// even though the id itself is approved. Example: in fail-safe mode the
/// door node accepts the lock-command id but only with the UNLOCK opcode.
struct PayloadRule {
  std::uint32_t id = 0;  // standard identifier the rule applies to
  std::uint8_t byte_index = 0;
  std::uint8_t min = 0;
  std::uint8_t max = 255;

  [[nodiscard]] bool satisfied_by(const can::Frame& frame) const noexcept {
    if (frame.id().is_extended() || frame.id().raw() != id) return true;
    if (frame.dlc() <= byte_index) return false;  // byte absent: reject
    const std::uint8_t v = frame.data()[byte_index];
    return v >= min && v <= max;
  }
};

/// Read- and write-list pair for one operational mode, plus optional
/// content rules applied after the id check (both directions).
struct ListPair {
  ApprovedIdList read;
  ApprovedIdList write;
  std::vector<PayloadRule> content_rules;
};

struct HpeConfig {
  /// Lists used when no per-mode entry exists for the current mode.
  ListPair default_lists;
  /// Mode key (e.g. car mode enum value) -> lists for that mode.
  std::map<std::uint8_t, ListPair> per_mode;
  /// When set, the engine snoops this standard frame id; payload byte 0 is
  /// interpreted as the new mode key.
  std::optional<std::uint32_t> mode_frame_id;
  /// Simulated lookup cost in hardware clock cycles, accounted per frame
  /// (a CAM lookup is 1-2 cycles; the default is deliberately pessimistic).
  std::uint32_t decision_cycles = 4;
};

class HardwarePolicyEngine final : public can::Channel, public can::FrameSink {
 public:
  /// Wraps `inner` (usually a Bus port). The engine registers itself as the
  /// inner channel's sink; the protected controller then attaches to the
  /// engine. `name` labels trace/audit output.
  HardwarePolicyEngine(can::Channel& inner, HpeConfig config, std::string name,
                       sim::Trace* trace = nullptr);
  ~HardwarePolicyEngine() override;

  HardwarePolicyEngine(const HardwarePolicyEngine&) = delete;
  HardwarePolicyEngine& operator=(const HardwarePolicyEngine&) = delete;

  // -- can::Channel (node-facing side) ----------------------------------
  bool submit(const can::Frame& frame) override;     // writing filter
  void set_sink(can::FrameSink* sink) override { node_sink_ = sink; }
  [[nodiscard]] bool busy() const override { return inner_.busy(); }

  // -- can::FrameSink (bus-facing side) ----------------------------------
  void on_frame(const can::Frame& frame, sim::SimTime at) override;  // reading filter
  void on_transmit_complete(const can::Frame& frame, bool success,
                            sim::SimTime at) override;

  // -- provisioning and update -------------------------------------------

  /// Freezes the configuration. After locking, set_config() throws — the
  /// only way in is apply_update(). Models one-time-programmable policy
  /// storage provisioned at manufacture.
  void lock() noexcept { locked_ = true; }
  [[nodiscard]] bool locked() const noexcept { return locked_; }

  /// Replaces the configuration. Throws std::logic_error once locked
  /// (counted as a tamper attempt — this is the entry point a firmware
  /// compromise would try).
  void set_config(HpeConfig config);

  /// Authenticated reconfiguration: verifies the bundle tag with the
  /// device-provisioned verifier, requires a strictly newer version, then
  /// installs lists derived by the caller. Returns false (and counts a
  /// tamper attempt) on verification failure.
  bool apply_update(const core::PolicyBundle& bundle,
                    const core::PolicySigner& verifier, HpeConfig new_config);

  // -- observation --------------------------------------------------------
  [[nodiscard]] const HpeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const std::vector<AuditRecord>& audit_log() const noexcept {
    return audit_;
  }
  [[nodiscard]] std::uint8_t current_mode() const noexcept { return mode_; }
  [[nodiscard]] std::uint64_t policy_version() const noexcept {
    return policy_version_;
  }
  [[nodiscard]] std::uint64_t cycles_spent() const noexcept { return cycles_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Forces the mode (used when no mode_frame_id snooping is configured).
  void set_mode(std::uint8_t mode) noexcept;

 private:
  [[nodiscard]] const ListPair& active_lists() const noexcept {
    return *active_;
  }
  /// Re-resolves active_ after a mode or configuration change, so the
  /// per-frame decision path never walks the per-mode map.
  void refresh_active_lists() noexcept;
  [[nodiscard]] bool decide(const can::Frame& frame, Direction direction,
                            sim::SimTime at);
  void record_block(can::CanId id, Direction direction, sim::SimTime at);

  can::Channel& inner_;
  HpeConfig config_;
  const ListPair* active_ = nullptr;  // into config_; never null post-ctor
  std::string name_;
  sim::Trace* trace_;
  can::FrameSink* node_sink_ = nullptr;
  bool locked_ = false;
  std::uint8_t mode_ = 0;
  std::uint64_t policy_version_ = 1;
  std::uint64_t cycles_ = 0;
  HpeStats stats_;
  std::vector<AuditRecord> audit_;
  static constexpr std::size_t kAuditCapacity = 1024;
};

}  // namespace psme::hpe
