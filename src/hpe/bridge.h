// psme::hpe — policy-filtering bridge between two CAN segments.
//
// One of the traditional countermeasures the paper quotes is "CAN bus
// gateway: Limit components with CAN bus access". This bridge realises
// that countermeasure as an *enforcement point*: it joins two buses and
// forwards frames between them only when the frame's identifier is on the
// per-direction approved list (optionally per operational mode, snooped
// from the mode-change broadcast like the HPE does). A segmented topology
// with a policy gateway shrinks the attack surface of the control segment
// to exactly the forwarded id set.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "can/bus.h"
#include "can/controller.h"
#include "hpe/approved_list.h"
#include "sim/trace.h"

namespace psme::hpe {
using can::Bus;
using can::Controller;
using can::Frame;
using can::FrameSink;
using can::Port;

enum class BridgeDirection : std::uint8_t {
  kAToB,
  kBToA,
};

[[nodiscard]] std::string_view to_string(BridgeDirection d) noexcept;

struct BridgeStats {
  std::uint64_t forwarded_a_to_b = 0;
  std::uint64_t dropped_a_to_b = 0;
  std::uint64_t forwarded_b_to_a = 0;
  std::uint64_t dropped_b_to_a = 0;
  std::uint64_t mode_switches = 0;
};

/// Per-direction approved-id pair for one mode.
struct BridgeLists {
  hpe::ApprovedIdList a_to_b;
  hpe::ApprovedIdList b_to_a;
};

struct BridgeConfig {
  BridgeLists default_lists;
  std::map<std::uint8_t, BridgeLists> per_mode;
  /// Snooped mode-change frame (byte 0 = mode key); the frame itself is
  /// always forwarded in both directions so segments stay synchronised.
  std::optional<std::uint32_t> mode_frame_id;
};

/// Store-and-forward gateway. Frames arriving on one segment are re-queued
/// for transmission on the other through a normal controller (so forwarded
/// traffic arbitrates fairly against local traffic).
class Bridge {
 public:
  Bridge(sim::Scheduler& sched, Bus& bus_a, Bus& bus_b, BridgeConfig config,
         std::string name = "gateway", sim::Trace* trace = nullptr);

  Bridge(const Bridge&) = delete;
  Bridge& operator=(const Bridge&) = delete;

  [[nodiscard]] const BridgeStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::uint8_t current_mode() const noexcept { return mode_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  void set_config(BridgeConfig config) {
    config_ = std::move(config);
    refresh_active_lists();
  }
  void set_mode(std::uint8_t mode) noexcept;

 private:
  class Side final : public FrameSink {
   public:
    Side(Bridge& bridge, BridgeDirection outbound) noexcept
        : bridge_(bridge), outbound_(outbound) {}
    void on_frame(const Frame& frame, sim::SimTime at) override {
      bridge_.forward(frame, outbound_, at);
    }

   private:
    Bridge& bridge_;
    BridgeDirection outbound_;
  };

  [[nodiscard]] const BridgeLists& active_lists() const noexcept {
    return *active_;
  }
  /// Re-resolves active_ after a mode or configuration change, keeping the
  /// per-frame forwarding path free of map lookups.
  void refresh_active_lists() noexcept;
  void forward(const Frame& frame, BridgeDirection direction, sim::SimTime at);

  sim::Scheduler& sched_;
  BridgeConfig config_;
  const BridgeLists* active_ = nullptr;  // into config_; never null post-ctor
  std::string name_;
  sim::Trace* trace_;
  std::uint8_t mode_ = 0;
  BridgeStats stats_;

  Side side_a_;  // listens on bus A, forwards toward B
  Side side_b_;
  Port& port_a_;
  Port& port_b_;
  Controller ctrl_a_;  // transmits onto bus A (i.e. B->A direction)
  Controller ctrl_b_;
};

}  // namespace psme::hpe
