// psme::hpe — approved CAN message-ID lists.
//
// "Approved reading and writing list: It holds a list of approved CAN
// messages IDs that provides necessary information to the node ..."
// (paper Sec. V-B.2, Fig. 4). Hardware implementations hold such lists in
// CAM/LUT structures supporting exact entries and masked entries; both are
// modelled, and lookup cost is O(exact: log n, masked: m) to mirror a
// realistic priority-encoded TCAM fallback.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "can/frame.h"

namespace psme::hpe {

/// A masked entry matches ids where (id & mask) == (value & mask).
struct MaskedEntry {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;
  bool extended = false;

  [[nodiscard]] bool matches(can::CanId id) const noexcept {
    return id.is_extended() == extended && (id.raw() & mask) == (value & mask);
  }
};

class ApprovedIdList {
 public:
  /// Adds one exact standard/extended identifier.
  void add(can::CanId id);
  /// Adds a masked entry (family of identifiers).
  void add_masked(MaskedEntry entry);
  /// Removes an exact identifier; returns true if present.
  bool remove(can::CanId id);

  [[nodiscard]] bool contains(can::CanId id) const noexcept;
  [[nodiscard]] std::size_t exact_count() const noexcept { return exact_.size(); }
  [[nodiscard]] std::size_t masked_count() const noexcept { return masked_.size(); }
  [[nodiscard]] bool empty() const noexcept {
    return exact_.empty() && masked_.empty();
  }
  void clear() noexcept;

  /// One line per entry, for audit reports.
  [[nodiscard]] std::string to_string() const;

 private:
  // Exact ids stored as (raw | extended-bit<<31... ) — encode format in key.
  [[nodiscard]] static std::uint64_t key(can::CanId id) noexcept {
    return (static_cast<std::uint64_t>(id.is_extended()) << 32) | id.raw();
  }

  std::set<std::uint64_t> exact_;
  std::vector<MaskedEntry> masked_;
};

}  // namespace psme::hpe
