#include "hpe/approved_list.h"

#include <algorithm>
#include <sstream>

namespace psme::hpe {

void ApprovedIdList::add(can::CanId id) { exact_.insert(key(id)); }

void ApprovedIdList::add_masked(MaskedEntry entry) {
  masked_.push_back(entry);
}

bool ApprovedIdList::remove(can::CanId id) {
  return exact_.erase(key(id)) != 0;
}

bool ApprovedIdList::contains(can::CanId id) const noexcept {
  if (exact_.count(key(id)) != 0) return true;
  return std::any_of(masked_.begin(), masked_.end(),
                     [id](const MaskedEntry& e) { return e.matches(id); });
}

void ApprovedIdList::clear() noexcept {
  exact_.clear();
  masked_.clear();
}

std::string ApprovedIdList::to_string() const {
  std::ostringstream out;
  for (const auto k : exact_) {
    const bool extended = (k >> 32) != 0;
    const auto raw = static_cast<std::uint32_t>(k & 0xFFFFFFFFu);
    out << (extended ? "ext " : "std ") << "0x" << std::hex << raw << std::dec
        << '\n';
  }
  for (const auto& m : masked_) {
    out << (m.extended ? "ext " : "std ") << "value=0x" << std::hex << m.value
        << " mask=0x" << m.mask << std::dec << '\n';
  }
  return out.str();
}

}  // namespace psme::hpe
