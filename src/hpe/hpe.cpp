#include "hpe/hpe.h"

#include <stdexcept>

namespace psme::hpe {

std::string_view to_string(Direction d) noexcept {
  return d == Direction::kRead ? "read" : "write";
}

HardwarePolicyEngine::HardwarePolicyEngine(can::Channel& inner,
                                           HpeConfig config, std::string name,
                                           sim::Trace* trace)
    : inner_(inner),
      config_(std::move(config)),
      name_(std::move(name)),
      trace_(trace) {
  refresh_active_lists();
  inner_.set_sink(this);
}

HardwarePolicyEngine::~HardwarePolicyEngine() { inner_.set_sink(nullptr); }

void HardwarePolicyEngine::refresh_active_lists() noexcept {
  const auto it = config_.per_mode.find(mode_);
  active_ = it == config_.per_mode.end() ? &config_.default_lists : &it->second;
}

bool HardwarePolicyEngine::decide(const can::Frame& frame, Direction direction,
                                  sim::SimTime at) {
  cycles_ += config_.decision_cycles;
  const can::CanId id = frame.id();
  const ListPair& lists = active_lists();
  const ApprovedIdList& list =
      direction == Direction::kRead ? lists.read : lists.write;
  bool granted = list.contains(id);
  if (granted) {
    // Fine-grained content rules: all rules naming this id must hold.
    for (const PayloadRule& rule : lists.content_rules) {
      if (!rule.satisfied_by(frame)) {
        granted = false;
        break;
      }
    }
  }
  if (granted) {
    if (direction == Direction::kRead) {
      ++stats_.read_granted;
    } else {
      ++stats_.write_granted;
    }
    return true;
  }
  if (direction == Direction::kRead) {
    ++stats_.read_blocked;
  } else {
    ++stats_.write_blocked;
  }
  record_block(id, direction, at);
  return false;
}

void HardwarePolicyEngine::record_block(can::CanId id, Direction direction,
                                        sim::SimTime at) {
  if (audit_.size() < kAuditCapacity) {
    audit_.push_back(AuditRecord{at, direction, id, mode_});
  }
  if (trace_ != nullptr) {
    trace_->record(at, sim::TraceLevel::kSecurity, "hpe." + name_,
                   std::string(to_string(direction)) + " blocked id=" +
                       id.to_string());
  }
}

bool HardwarePolicyEngine::submit(const can::Frame& frame) {
  // Writing filter: curtails inside attacks (compromised local firmware
  // trying to emit unapproved identifiers).
  if (!decide(frame, Direction::kWrite, sim::kSimStart)) {
    return false;
  }
  return inner_.submit(frame);
}

void HardwarePolicyEngine::on_frame(const can::Frame& frame, sim::SimTime at) {
  // Autonomous mode snooping happens before filtering so that a mode
  // change frame need not be on the node's own approved read list.
  if (config_.mode_frame_id.has_value() && !frame.id().is_extended() &&
      frame.id().raw() == *config_.mode_frame_id && frame.dlc() >= 1) {
    set_mode(frame.byte0());
  }

  // Reading filter: curtails outside attacks (malicious nodes injecting
  // unapproved identifiers toward this node).
  if (!decide(frame, Direction::kRead, at)) {
    return;  // frame never reaches the controller
  }
  if (node_sink_ != nullptr) node_sink_->on_frame(frame, at);
}

void HardwarePolicyEngine::on_transmit_complete(const can::Frame& frame,
                                                bool success, sim::SimTime at) {
  if (node_sink_ != nullptr) node_sink_->on_transmit_complete(frame, success, at);
}

void HardwarePolicyEngine::set_mode(std::uint8_t mode) noexcept {
  if (mode_ != mode) {
    mode_ = mode;
    ++stats_.mode_switches;
    refresh_active_lists();
  }
}

void HardwarePolicyEngine::set_config(HpeConfig config) {
  if (locked_) {
    ++stats_.tamper_attempts;
    throw std::logic_error(
        "HardwarePolicyEngine::set_config: engine is locked; use apply_update");
  }
  config_ = std::move(config);
  refresh_active_lists();
}

bool HardwarePolicyEngine::apply_update(const core::PolicyBundle& bundle,
                                        const core::PolicySigner& verifier,
                                        HpeConfig new_config) {
  if (!verifier.verify(bundle.set, bundle.tag)) {
    ++stats_.tamper_attempts;
    if (trace_ != nullptr) {
      trace_->record(sim::kSimStart, sim::TraceLevel::kError, "hpe." + name_,
                     "rejected policy update: bad signature");
    }
    return false;
  }
  if (bundle.version() <= policy_version_) {
    ++stats_.tamper_attempts;
    if (trace_ != nullptr) {
      trace_->record(sim::kSimStart, sim::TraceLevel::kError, "hpe." + name_,
                     "rejected policy update: version rollback");
    }
    return false;
  }
  config_ = std::move(new_config);
  refresh_active_lists();
  policy_version_ = bundle.version();
  return true;
}

}  // namespace psme::hpe
