// psme::can — CAN protocol controller.
//
// Mirrors the controller block of the paper's Fig. 3: it parses received
// frames, applies the *programmable software acceptance filter*, manages a
// priority-ordered transmit queue with automatic retransmission, and keeps
// the fault-confinement counters. The software filter being reprogrammable
// at runtime (set_filters is an ordinary mutator) is deliberate — the paper
// argues this is the weakness a hardware policy engine removes, and the
// attack framework models firmware compromise by rewriting these filters.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "can/channel.h"
#include "can/errors.h"
#include "can/frame.h"
#include "sim/event_queue.h"
#include "sim/trace.h"

namespace psme::can {

class WireMac;

/// Classic mask/value acceptance filter. A frame matches when its format
/// agrees and (raw & mask) == (value & mask).
struct AcceptanceFilter {
  std::uint32_t mask = 0;
  std::uint32_t value = 0;
  bool extended = false;

  [[nodiscard]] bool matches(CanId id) const noexcept {
    return id.is_extended() == extended && (id.raw() & mask) == (value & mask);
  }

  /// Filter matching exactly one standard identifier.
  static AcceptanceFilter exact(std::uint32_t standard_id) noexcept {
    return AcceptanceFilter{CanId::kMaxStandard, standard_id, false};
  }
};

/// Counters a controller exposes for experiments.
struct ControllerStats {
  std::uint64_t tx_queued = 0;       // frames accepted into the TX queue
  std::uint64_t tx_sent = 0;         // frames successfully transmitted
  std::uint64_t tx_retransmits = 0;  // error-frame-triggered retries
  std::uint64_t tx_dropped = 0;      // queue full or bus-off or shim-refused
  std::uint64_t rx_seen = 0;         // frames observed on the bus
  std::uint64_t rx_accepted = 0;     // frames passing the acceptance filter
  std::uint64_t rx_filtered = 0;     // frames rejected by the filter
  std::uint64_t rx_overflow = 0;     // FIFO overruns (receiver too slow)
  std::uint64_t rx_quarantined = 0;  // frames dropped by a quarantine block
  std::uint64_t rx_wire_denied = 0;  // frames dropped by the wire MAC
};

/// The data-link controller of one CAN node.
class Controller final : public FrameSink {
 public:
  /// Frames the receiver hands to the application processor.
  using RxHandler = std::function<void(const Frame&, sim::SimTime)>;

  static constexpr std::size_t kDefaultTxQueue = 64;
  static constexpr std::size_t kDefaultRxFifo = 32;

  Controller(sim::Scheduler& sched, Channel& channel, std::string name,
             sim::Trace* trace = nullptr);
  ~Controller() override;

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  // -- transmit path --------------------------------------------------

  /// Queues a frame for transmission. Returns false (and counts a drop)
  /// when the queue is full or the node is bus-off.
  bool transmit(const Frame& frame);

  /// Maximum retransmission attempts per frame before it is dropped.
  void set_retransmit_limit(std::uint32_t limit) noexcept {
    retransmit_limit_ = limit;
  }

  // -- receive path ----------------------------------------------------

  /// Replaces the software acceptance filter set. An empty set accepts
  /// every frame (the controller power-on default).
  void set_filters(std::vector<AcceptanceFilter> filters);
  [[nodiscard]] const std::vector<AcceptanceFilter>& filters() const noexcept {
    return filters_;
  }

  /// Registers the application-processor handler. While a handler is set,
  /// accepted frames are dispatched immediately; otherwise they accumulate
  /// in the RX FIFO (bounded; overruns are counted).
  void set_rx_handler(RxHandler handler);

  /// Pops the oldest frame from the RX FIFO, if any.
  [[nodiscard]] bool receive(Frame& out);

  /// Attaches a wire-rate MAC adjudicator (nullptr detaches). Ingress
  /// order is pinned: quarantine blocks, then the acceptance filter,
  /// then the wire MAC — a filtered frame never burns a SID lookup.
  /// Denied frames are dropped before the application processor sees
  /// them, counted in rx_wire_denied. The WireMac must outlive its
  /// attachment; the controller does not own it.
  void set_wire_mac(WireMac* wire_mac) noexcept { wire_mac_ = wire_mac; }
  [[nodiscard]] WireMac* wire_mac() const noexcept { return wire_mac_; }

  // -- quarantine blocks -----------------------------------------------
  // A response layer (car::QuarantineController) can install temporary
  // id-level blocks that drop matching frames BEFORE the acceptance
  // filter, counted separately in rx_quarantined. Unlike set_filters()
  // these are additive (they never widen acceptance) and reversible one
  // id at a time, so a quarantine expiry restores exactly the previous
  // behaviour.

  /// Installs a quarantine block for `id` (idempotent).
  void quarantine_id(CanId id);
  /// Removes the block for `id`; returns false when none existed.
  bool release_quarantined_id(CanId id);
  void clear_quarantine() { quarantined_.clear(); }
  [[nodiscard]] const std::vector<CanId>& quarantined_ids() const noexcept {
    return quarantined_;
  }

  [[nodiscard]] std::size_t rx_fifo_depth() const noexcept {
    return rx_fifo_.size();
  }
  void set_rx_fifo_capacity(std::size_t capacity) noexcept {
    rx_fifo_capacity_ = capacity;
  }

  // -- status ----------------------------------------------------------

  [[nodiscard]] const ControllerStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ErrorCounters& errors() const noexcept { return errors_; }
  [[nodiscard]] ErrorState error_state() const noexcept { return errors_.state(); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t tx_queue_depth() const noexcept {
    return tx_queue_.size();
  }

  /// Resets fault confinement after bus-off (recovery sequence done).
  void reset_errors() noexcept { errors_.reset(); }

  // -- FrameSink (wire side; called by the bus or a policy shim) --------
  void on_frame(const Frame& frame, sim::SimTime at) override;
  void on_transmit_complete(const Frame& frame, bool success,
                            sim::SimTime at) override;

 private:
  void pump();  // pushes the highest-priority queued frame into the channel

  [[nodiscard]] bool accepts(CanId id) const noexcept;

  void trace(sim::TraceLevel level, const std::string& msg);

  sim::Scheduler& sched_;
  Channel& channel_;
  std::string name_;
  sim::Trace* trace_;

  // TX queue kept sorted by arbitration priority (lowest key first), FIFO
  // among equal identifiers — matches mailbox behaviour of real controllers.
  // The frame currently occupying the transmit slot is *not* in the queue;
  // it lives in in_flight_ until the bus reports completion.
  std::deque<Frame> tx_queue_;
  std::size_t tx_queue_capacity_ = kDefaultTxQueue;
  std::uint32_t retransmit_limit_ = 8;
  std::uint32_t current_attempts_ = 0;
  std::optional<Frame> in_flight_;

  std::vector<AcceptanceFilter> filters_;
  std::vector<CanId> quarantined_;  // tiny; linear scan
  WireMac* wire_mac_ = nullptr;     // borrowed; see set_wire_mac
  RxHandler rx_handler_;
  std::deque<Frame> rx_fifo_;
  std::size_t rx_fifo_capacity_ = kDefaultRxFifo;

  ControllerStats stats_;
  ErrorCounters errors_;
};

}  // namespace psme::can
