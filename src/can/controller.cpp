#include "can/controller.h"

#include <algorithm>

#include "can/wire_mac.h"

namespace psme::can {

Controller::Controller(sim::Scheduler& sched, Channel& channel,
                       std::string name, sim::Trace* trace)
    : sched_(sched), channel_(channel), name_(std::move(name)), trace_(trace) {
  channel_.set_sink(this);
}

Controller::~Controller() { channel_.set_sink(nullptr); }

bool Controller::transmit(const Frame& frame) {
  if (!errors_.can_transmit()) {
    ++stats_.tx_dropped;
    trace(sim::TraceLevel::kError, "transmit refused: node is bus-off");
    return false;
  }
  if (tx_queue_.size() >= tx_queue_capacity_) {
    ++stats_.tx_dropped;
    trace(sim::TraceLevel::kError, "transmit refused: TX queue full");
    return false;
  }
  // Insert keeping priority order (stable among equal identifiers).
  const auto key = frame.id().arbitration_key();
  auto it = std::find_if(tx_queue_.begin(), tx_queue_.end(),
                         [key](const Frame& f) {
                           return f.id().arbitration_key() > key;
                         });
  tx_queue_.insert(it, frame);
  ++stats_.tx_queued;
  pump();
  return true;
}

void Controller::pump() {
  while (!in_flight_.has_value() && !tx_queue_.empty() &&
         errors_.can_transmit()) {
    const Frame head = tx_queue_.front();
    if (channel_.submit(head)) {
      in_flight_ = head;
      tx_queue_.pop_front();
      return;
    }
    if (channel_.busy()) return;  // slot occupied; retry on completion
    // Not busy yet refused: a policy shim blocked the frame outright. Drop
    // it and keep pumping — a deep queue must not stall behind a blocked
    // head.
    trace(sim::TraceLevel::kSecurity,
          "TX blocked by policy shim: " + head.to_string());
    ++stats_.tx_dropped;
    tx_queue_.pop_front();
    current_attempts_ = 0;
  }
}

void Controller::set_filters(std::vector<AcceptanceFilter> filters) {
  filters_ = std::move(filters);
}

void Controller::set_rx_handler(RxHandler handler) {
  rx_handler_ = std::move(handler);
  // Drain anything that accumulated while no handler was registered.
  while (rx_handler_ && !rx_fifo_.empty()) {
    const Frame f = rx_fifo_.front();
    rx_fifo_.pop_front();
    rx_handler_(f, sched_.now());
  }
}

bool Controller::receive(Frame& out) {
  if (rx_fifo_.empty()) return false;
  out = rx_fifo_.front();
  rx_fifo_.pop_front();
  return true;
}

void Controller::quarantine_id(CanId id) {
  if (std::find(quarantined_.begin(), quarantined_.end(), id) ==
      quarantined_.end()) {
    quarantined_.push_back(id);
  }
}

bool Controller::release_quarantined_id(CanId id) {
  const auto it = std::find(quarantined_.begin(), quarantined_.end(), id);
  if (it == quarantined_.end()) return false;
  quarantined_.erase(it);
  return true;
}

bool Controller::accepts(CanId id) const noexcept {
  if (filters_.empty()) return true;
  return std::any_of(filters_.begin(), filters_.end(),
                     [id](const AcceptanceFilter& f) { return f.matches(id); });
}

void Controller::on_frame(const Frame& frame, sim::SimTime at) {
  ++stats_.rx_seen;
  errors_.on_receive_success();
  if (!quarantined_.empty() &&
      std::find(quarantined_.begin(), quarantined_.end(), frame.id()) !=
          quarantined_.end()) {
    ++stats_.rx_quarantined;
    trace(sim::TraceLevel::kSecurity,
          "RX dropped by quarantine block: " + frame.to_string());
    return;
  }
  if (!accepts(frame.id())) {
    ++stats_.rx_filtered;
    return;
  }
  // Wire MAC runs strictly AFTER the acceptance filter: a frame the
  // hardware would never deliver must not cost a SID lookup (ordering
  // pinned by test_controller's stage-counter test).
  if (wire_mac_ != nullptr && !wire_mac_->admit(frame, at)) {
    ++stats_.rx_wire_denied;
    trace(sim::TraceLevel::kSecurity,
          "RX dropped by wire MAC: " + frame.to_string());
    return;
  }
  ++stats_.rx_accepted;
  if (rx_handler_) {
    rx_handler_(frame, at);
    return;
  }
  if (rx_fifo_.size() >= rx_fifo_capacity_) {
    ++stats_.rx_overflow;
    trace(sim::TraceLevel::kError, "RX FIFO overflow, frame lost");
    return;
  }
  rx_fifo_.push_back(frame);
}

void Controller::on_transmit_complete(const Frame& frame, bool success,
                                      sim::SimTime /*at*/) {
  if (success) {
    in_flight_.reset();
    errors_.on_transmit_success();
    ++stats_.tx_sent;
    current_attempts_ = 0;
    pump();
    return;
  }

  // Transmission destroyed by a bus error: standard CAN behaviour is
  // automatic retransmission of the same frame; we bound attempts so that
  // a jammed bus cannot wedge the simulation.
  errors_.on_transmit_error();
  ++current_attempts_;
  if (!errors_.can_transmit()) {
    trace(sim::TraceLevel::kError, "entered bus-off, dropping TX queue");
    stats_.tx_dropped += tx_queue_.size() + 1;  // queue plus in-flight frame
    tx_queue_.clear();
    in_flight_.reset();
    current_attempts_ = 0;
    return;
  }
  if (current_attempts_ >= retransmit_limit_) {
    trace(sim::TraceLevel::kError,
          "retransmit limit reached, dropping " + frame.to_string());
    in_flight_.reset();
    ++stats_.tx_dropped;
    current_attempts_ = 0;
    pump();
    return;
  }
  ++stats_.tx_retransmits;
  // Resubmit the in-flight frame directly: the slot just freed, and CAN
  // retransmits the same frame rather than letting the queue overtake it.
  if (!channel_.submit(*in_flight_)) {
    // Shim refusal or unexpected slot contention: drop rather than wedge.
    ++stats_.tx_dropped;
    in_flight_.reset();
    current_attempts_ = 0;
    pump();
  }
}

void Controller::trace(sim::TraceLevel level, const std::string& msg) {
  if (trace_ != nullptr) {
    trace_->record(sched_.now(), level, "can.ctrl." + name_, msg);
  }
}

}  // namespace psme::can
