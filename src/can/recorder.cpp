#include "can/recorder.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace psme::can {

FrameRecorder::FrameRecorder(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ == 0) {
    throw std::invalid_argument("FrameRecorder: capacity must be positive");
  }
}

void FrameRecorder::on_frame(const Frame& frame, sim::SimTime at) {
  if (records_.size() >= capacity_) {
    records_.erase(records_.begin());
    ++dropped_;
  }
  records_.push_back(RecordedFrame{at, frame});
}

std::vector<RecordedFrame> FrameRecorder::filter_by_id(CanId id) const {
  std::vector<RecordedFrame> out;
  for (const auto& record : records_) {
    if (record.frame.id() == id) out.push_back(record);
  }
  return out;
}

std::vector<RecordedFrame> FrameRecorder::between(sim::SimTime from,
                                                  sim::SimTime to) const {
  std::vector<RecordedFrame> out;
  for (const auto& record : records_) {
    if (record.at >= from && record.at <= to) out.push_back(record);
  }
  return out;
}

const RecordedFrame* FrameRecorder::find_first(CanId id) const noexcept {
  for (const auto& record : records_) {
    if (record.frame.id() == id) return &record;
  }
  return nullptr;
}

std::string FrameRecorder::to_csv() const {
  std::ostringstream out;
  out << "time_ns,id,extended,rtr,dlc,data\n";
  for (const auto& record : records_) {
    out << record.at.count() << ",0x" << std::hex << record.frame.id().raw()
        << std::dec << ',' << (record.frame.id().is_extended() ? 1 : 0) << ','
        << (record.frame.is_remote() ? 1 : 0) << ','
        << static_cast<int>(record.frame.dlc()) << ',';
    for (const auto byte : record.frame.data()) {
      out << std::hex << std::setw(2) << std::setfill('0')
          << static_cast<int>(byte);
    }
    out << std::dec << '\n';
  }
  return out.str();
}

Replayer::Replayer(sim::Scheduler& sched, TransmitFn transmit)
    : sched_(sched), transmit_(std::move(transmit)) {
  if (!transmit_) {
    throw std::invalid_argument("Replayer: transmit function required");
  }
}

void Replayer::fire(const Frame& frame) {
  if (transmit_(frame)) {
    ++transmitted_;
  } else {
    ++refused_;
  }
}

std::size_t Replayer::replay(const std::vector<RecordedFrame>& records,
                             double speedup) {
  if (records.empty()) return 0;
  if (speedup <= 0.0) {
    throw std::invalid_argument("Replayer: speedup must be positive");
  }
  const sim::SimTime base = records.front().at;
  for (const auto& record : records) {
    const auto offset_ns = static_cast<std::int64_t>(
        static_cast<double>((record.at - base).count()) / speedup);
    sched_.schedule_in(sim::SimDuration{offset_ns},
                       [this, frame = record.frame] { fire(frame); },
                       "replay");
  }
  return records.size();
}

void Replayer::replay_repeated(const Frame& frame, std::uint32_t count,
                               sim::SimDuration spacing) {
  for (std::uint32_t i = 0; i < count; ++i) {
    sched_.schedule_in(spacing * static_cast<std::int64_t>(i),
                       [this, frame] { fire(frame); }, "replay");
  }
}

}  // namespace psme::can
