// psme::can — bus traffic recording and replay.
//
// Two security workflows need a faithful capture of the wire:
//  * forensics / evidence identification — after an incident, the trace of
//    timestamped frames is what the analyst works from (cf. Akatyev &
//    James, which the paper builds on);
//  * replay attacks — the classic CAN attack primitive: record a
//    legitimate frame (an unlock command, say) and inject it later. The
//    attack framework uses Replayer to model exactly that, which is also
//    why freshness cannot come from the frame itself and policy filters
//    must gate by mode/context instead.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "can/channel.h"
#include "can/frame.h"
#include "sim/event_queue.h"

namespace psme::can {

struct RecordedFrame {
  sim::SimTime at{};
  Frame frame;
};

/// Passive tap storing every observed frame with its timestamp. Attach as
/// the sink of a dedicated bus port.
class FrameRecorder final : public FrameSink {
 public:
  /// `capacity` bounds memory; older frames are dropped once exceeded
  /// (count kept in dropped()).
  explicit FrameRecorder(std::size_t capacity = 65536);

  void on_frame(const Frame& frame, sim::SimTime at) override;

  [[nodiscard]] const std::vector<RecordedFrame>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() noexcept { records_.clear(); }

  /// Frames matching an id, in capture order.
  [[nodiscard]] std::vector<RecordedFrame> filter_by_id(CanId id) const;

  /// Frames captured within [from, to].
  [[nodiscard]] std::vector<RecordedFrame> between(sim::SimTime from,
                                                   sim::SimTime to) const;

  /// First captured frame with the given id, if any.
  [[nodiscard]] const RecordedFrame* find_first(CanId id) const noexcept;

  /// CSV export: time_ns,id,extended,rtr,dlc,data-hex.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::size_t capacity_;
  std::vector<RecordedFrame> records_;
  std::uint64_t dropped_ = 0;
};

/// Schedules captured frames back onto a bus through a transmit function
/// (typically a controller's or an attacker node's transmit).
class Replayer {
 public:
  using TransmitFn = std::function<bool(const Frame&)>;

  Replayer(sim::Scheduler& sched, TransmitFn transmit);

  /// Replays the given records starting now, preserving their original
  /// inter-frame spacing (timestamps are re-based to the current time).
  /// `speedup` > 1 compresses the timeline. Returns the number scheduled.
  std::size_t replay(const std::vector<RecordedFrame>& records,
                     double speedup = 1.0);

  /// Replays one frame `count` times with fixed spacing — the classic
  /// replay-attack loop.
  void replay_repeated(const Frame& frame, std::uint32_t count,
                       sim::SimDuration spacing);

  [[nodiscard]] std::uint64_t transmitted() const noexcept {
    return transmitted_;
  }
  [[nodiscard]] std::uint64_t refused() const noexcept { return refused_; }

 private:
  void fire(const Frame& frame);

  sim::Scheduler& sched_;
  TransmitFn transmit_;
  std::uint64_t transmitted_ = 0;
  std::uint64_t refused_ = 0;
};

}  // namespace psme::can
