#include "can/frame.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace psme::can {

CanId CanId::standard(std::uint32_t raw) {
  if (raw > kMaxStandard) {
    throw std::out_of_range("CanId::standard: id exceeds 11 bits");
  }
  return CanId(raw, /*extended=*/false);
}

CanId CanId::extended(std::uint32_t raw) {
  if (raw > kMaxExtended) {
    throw std::out_of_range("CanId::extended: id exceeds 29 bits");
  }
  return CanId(raw, /*extended=*/true);
}

std::uint64_t CanId::arbitration_key() const noexcept {
  return arbitration_key_constexpr();
}

std::string CanId::to_string() const {
  std::ostringstream out;
  out << "0x" << std::hex << std::uppercase << raw_;
  if (extended_) out << "x";  // suffix marks extended format
  return out.str();
}

Frame::Frame(CanId id, std::span<const std::uint8_t> data) : id_(id) {
  if (data.size() > kMaxData) {
    throw std::length_error("Frame: classic CAN carries at most 8 data bytes");
  }
  dlc_ = static_cast<std::uint8_t>(data.size());
  std::copy(data.begin(), data.end(), data_.begin());
}

Frame Frame::remote(CanId id, std::uint8_t dlc) {
  if (dlc > kMaxData) {
    throw std::length_error("Frame::remote: dlc exceeds 8");
  }
  Frame f;
  f.id_ = id;
  f.rtr_ = true;
  f.dlc_ = dlc;
  return f;
}

namespace {

void push_bits(std::vector<bool>& bits, std::uint32_t value, int width) {
  for (int i = width - 1; i >= 0; --i) {
    bits.push_back(((value >> i) & 1u) != 0);
  }
}

}  // namespace

void Frame::append_bitstream(std::vector<bool>& bits) const {
  // SOF (dominant).
  bits.push_back(false);
  if (!id_.is_extended()) {
    push_bits(bits, id_.raw(), 11);
    bits.push_back(rtr_);   // RTR
    bits.push_back(false);  // IDE = 0 (standard)
    bits.push_back(false);  // r0
  } else {
    push_bits(bits, (id_.raw() >> 18) & 0x7FF, 11);  // base id
    bits.push_back(true);                            // SRR (recessive)
    bits.push_back(true);                            // IDE = 1 (extended)
    push_bits(bits, id_.raw() & 0x3FFFF, 18);        // id extension
    bits.push_back(rtr_);                            // RTR
    bits.push_back(false);                           // r1
    bits.push_back(false);                           // r0
  }
  push_bits(bits, dlc_, 4);
  if (!rtr_) {
    for (std::uint8_t i = 0; i < dlc_; ++i) push_bits(bits, data_[i], 8);
  }
}

std::uint16_t Frame::crc15() const noexcept {
  // ISO 11898-1 CRC: polynomial 0xC599 (x^15+x^14+x^10+x^8+x^7+x^4+x^3+1),
  // computed over SOF through the last data bit, initial value 0.
  std::vector<bool> bits;
  append_bitstream(bits);
  std::uint16_t crc = 0;
  for (const bool bit : bits) {
    const bool crc_next = bit ^ (((crc >> 14) & 1u) != 0);
    crc = static_cast<std::uint16_t>((crc << 1) & 0x7FFF);
    if (crc_next) crc ^= 0x4599;
  }
  return crc;
}

std::size_t Frame::wire_bits() const noexcept {
  // Stuffing applies from SOF through the CRC sequence: after five
  // consecutive equal bits a stuff bit of opposite polarity is inserted.
  std::vector<bool> bits;
  append_bitstream(bits);
  push_bits(bits, crc15(), 15);

  std::size_t stuffed = 0;
  int run = 0;
  bool prev = false;
  bool first = true;
  for (bool b : bits) {
    if (!first && b == prev) {
      ++run;
      if (run == 5) {
        ++stuffed;     // stuff bit inserted, opposite polarity
        prev = !b;     // the stuff bit becomes the new "previous"
        run = 1;
        continue;
      }
    } else {
      run = 1;
    }
    prev = b;
    first = false;
  }

  // CRC delimiter (1) + ACK slot (1) + ACK delimiter (1) + EOF (7)
  // + interframe space (3); none of these are subject to stuffing.
  return bits.size() + stuffed + 1 + 1 + 1 + 7 + 3;
}

std::string Frame::to_string() const {
  std::ostringstream out;
  out << "id=" << id_.to_string();
  if (rtr_) {
    out << " RTR dlc=" << static_cast<int>(dlc_);
    return out.str();
  }
  out << " dlc=" << static_cast<int>(dlc_) << " [";
  for (std::uint8_t i = 0; i < dlc_; ++i) {
    if (i != 0) out << ' ';
    out << std::hex << std::setw(2) << std::setfill('0')
        << static_cast<int>(data_[i]);
  }
  out << ']';
  return out.str();
}

Frame make_frame(std::uint32_t standard_id,
                 std::initializer_list<std::uint8_t> bytes) {
  std::vector<std::uint8_t> data(bytes);
  return Frame(CanId::standard(standard_id),
               std::span<const std::uint8_t>(data));
}

}  // namespace psme::can
