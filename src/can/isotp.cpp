#include "can/isotp.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace psme::can {

namespace {

/// Conversation key: format bit above the 29 identifier bits.
[[nodiscard]] std::uint64_t id_key(CanId id) noexcept {
  return (static_cast<std::uint64_t>(id.is_extended()) << 32) | id.raw();
}

[[nodiscard]] CanId key_id(std::uint64_t key) {
  const auto raw = static_cast<std::uint32_t>(key & 0x1FFF'FFFF);
  return (key >> 32) != 0 ? CanId::extended(raw) : CanId::standard(raw);
}

}  // namespace

std::string_view to_string(IsoTpFrameType type) noexcept {
  switch (type) {
    case IsoTpFrameType::kSingle: return "single";
    case IsoTpFrameType::kFirst: return "first";
    case IsoTpFrameType::kConsecutive: return "consecutive";
    case IsoTpFrameType::kFlowControl: return "flow-control";
    case IsoTpFrameType::kInvalid: break;
  }
  return "invalid";
}

std::string_view to_string(IsoTpError error) noexcept {
  switch (error) {
    case IsoTpError::kNone: return "none";
    case IsoTpError::kMalformedPci: return "malformed-pci";
    case IsoTpError::kUnexpectedConsecutive: return "unexpected-cf";
    case IsoTpError::kWrongSequence: return "wrong-sequence";
    case IsoTpError::kOverlappingStart: return "overlapping-start";
    case IsoTpError::kTimeout: return "timeout";
  }
  return "invalid";
}

IsoTpFrameType isotp_frame_type(const Frame& frame) noexcept {
  if (frame.is_remote() || frame.dlc() == 0) return IsoTpFrameType::kInvalid;
  const std::uint8_t nibble = frame.byte0() >> 4;
  if (nibble > 3) return IsoTpFrameType::kInvalid;
  return static_cast<IsoTpFrameType>(nibble);
}

void IsoTpReassembler::open(std::uint64_t key, const Frame& frame,
                            std::size_t len, sim::SimTime at) {
  Conversation& conv = conversations_[key];
  conv.payload.clear();
  conv.payload.reserve(len);
  const std::span<const std::uint8_t> data = frame.data();
  conv.payload.assign(data.begin() + 2, data.end());
  conv.expected_len = len;
  conv.next_seq = 1;
  conv.last_activity = at;
}

IsoTpReassembler::Event IsoTpReassembler::feed(const Frame& frame,
                                               sim::SimTime at) {
  ++stats_.frames;
  const std::uint64_t key = id_key(frame.id());
  const IsoTpFrameType type = isotp_frame_type(frame);
  const std::span<const std::uint8_t> data = frame.data();

  switch (type) {
    case IsoTpFrameType::kSingle: {
      const std::size_t len = frame.byte0() & 0x0F;
      // SF length must be 1..7 and must fit the frame behind the PCI byte.
      if (len == 0 || len > Frame::kMaxData - 1 || len > data.size() - 1) {
        ++stats_.malformed;
        return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
      }
      // An SF tears down any half-open conversation on the same id: the
      // sender evidently abandoned it.
      if (conversations_.erase(key) != 0) ++stats_.restarts;
      ++stats_.single;
      completed_.id = frame.id();
      completed_.payload.assign(data.begin() + 1, data.begin() + 1 + len);
      ++stats_.completed;
      return Event{EventKind::kMessageComplete, IsoTpError::kNone, &completed_};
    }

    case IsoTpFrameType::kFirst: {
      // FF carries a 12-bit total length and must be a full 8-byte frame;
      // lengths 0..7 belong in an SF and are malformed here.
      if (data.size() != Frame::kMaxData) {
        ++stats_.malformed;
        return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
      }
      const std::size_t len =
          (static_cast<std::size_t>(frame.byte0() & 0x0F) << 8) | data[1];
      if (len < Frame::kMaxData || len > kIsoTpMaxPayload) {
        ++stats_.malformed;
        return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
      }
      ++stats_.first;
      const bool overlapping = conversations_.contains(key);
      if (overlapping) ++stats_.restarts;
      open(key, frame, len, at);
      return Event{EventKind::kMessageStart,
                   overlapping ? IsoTpError::kOverlappingStart
                               : IsoTpError::kNone,
                   nullptr};
    }

    case IsoTpFrameType::kConsecutive: {
      const auto it = conversations_.find(key);
      if (it == conversations_.end()) {
        ++stats_.unexpected_cf;
        return Event{EventKind::kError, IsoTpError::kUnexpectedConsecutive,
                     nullptr};
      }
      Conversation& conv = it->second;
      const std::uint8_t seq = frame.byte0() & 0x0F;
      if (seq != conv.next_seq) {
        // A dropped, duplicated or reordered CF is unrecoverable for a
        // passive observer: abort the conversation rather than guess.
        ++stats_.wrong_sequence;
        conversations_.erase(it);
        return Event{EventKind::kError, IsoTpError::kWrongSequence, nullptr};
      }
      const std::size_t remaining = conv.expected_len - conv.payload.size();
      const std::size_t take = std::min<std::size_t>(remaining, 7);
      if (data.size() - 1 < take) {
        // Truncated CF: the sender owed `take` bytes.
        ++stats_.malformed;
        conversations_.erase(it);
        return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
      }
      ++stats_.consecutive;
      conv.payload.insert(conv.payload.end(), data.begin() + 1,
                          data.begin() + 1 + take);
      conv.next_seq = static_cast<std::uint8_t>((conv.next_seq + 1) & 0x0F);
      conv.last_activity = at;
      if (conv.payload.size() < conv.expected_len) {
        return Event{EventKind::kPayloadFrame, IsoTpError::kNone, nullptr};
      }
      completed_.id = frame.id();
      completed_.payload = std::move(conv.payload);
      conversations_.erase(it);
      ++stats_.completed;
      return Event{EventKind::kMessageComplete, IsoTpError::kNone, &completed_};
    }

    case IsoTpFrameType::kFlowControl: {
      // FC = PCI byte, block size, STmin. Flow status 0..2; 3+ reserved.
      if (data.size() < 3 || (frame.byte0() & 0x0F) > 2) {
        ++stats_.malformed;
        return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
      }
      ++stats_.flow_control;
      return Event{EventKind::kNone, IsoTpError::kNone, nullptr};
    }

    case IsoTpFrameType::kInvalid: break;
  }
  ++stats_.malformed;
  return Event{EventKind::kError, IsoTpError::kMalformedPci, nullptr};
}

std::vector<CanId> IsoTpReassembler::expire(sim::SimTime now) {
  std::vector<CanId> expired;
  for (auto it = conversations_.begin(); it != conversations_.end();) {
    if (now - it->second.last_activity > cf_timeout_) {
      expired.push_back(key_id(it->first));
      ++stats_.timeouts;
      it = conversations_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

void IsoTpReassembler::reset() {
  conversations_.clear();
  completed_ = IsoTpMessage{};
}

std::vector<Frame> isotp_segment(CanId id,
                                 std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    throw std::invalid_argument("isotp_segment: empty payload");
  }
  if (payload.size() > kIsoTpMaxPayload) {
    throw std::length_error("isotp_segment: payload exceeds 4095 bytes");
  }
  std::vector<Frame> frames;
  std::array<std::uint8_t, Frame::kMaxData> buf{};
  if (payload.size() <= Frame::kMaxData - 1) {
    buf[0] = static_cast<std::uint8_t>(payload.size());
    std::copy(payload.begin(), payload.end(), buf.begin() + 1);
    frames.emplace_back(id, std::span<const std::uint8_t>(
                                buf.data(), payload.size() + 1));
    return frames;
  }
  buf[0] = static_cast<std::uint8_t>(0x10 | (payload.size() >> 8));
  buf[1] = static_cast<std::uint8_t>(payload.size() & 0xFF);
  std::copy(payload.begin(), payload.begin() + 6, buf.begin() + 2);
  frames.emplace_back(id, std::span<const std::uint8_t>(buf.data(), 8));
  std::size_t offset = 6;
  std::uint8_t seq = 1;
  while (offset < payload.size()) {
    const std::size_t take = std::min<std::size_t>(payload.size() - offset, 7);
    buf[0] = static_cast<std::uint8_t>(0x20 | seq);
    std::copy(payload.begin() + offset, payload.begin() + offset + take,
              buf.begin() + 1);
    frames.emplace_back(id,
                        std::span<const std::uint8_t>(buf.data(), take + 1));
    offset += take;
    seq = static_cast<std::uint8_t>((seq + 1) & 0x0F);
  }
  return frames;
}

}  // namespace psme::can
