#include "can/errors.h"

namespace psme::can {

std::string_view to_string(ErrorState state) noexcept {
  switch (state) {
    case ErrorState::kErrorActive: return "error-active";
    case ErrorState::kErrorPassive: return "error-passive";
    case ErrorState::kBusOff: return "bus-off";
  }
  return "?";
}

ErrorState ErrorCounters::state() const noexcept {
  if (tec_ > 255) return ErrorState::kBusOff;
  if (tec_ > 127 || rec_ > 127) return ErrorState::kErrorPassive;
  return ErrorState::kErrorActive;
}

void ErrorCounters::on_transmit_success() noexcept {
  if (tec_ > 0) --tec_;
}

void ErrorCounters::on_transmit_error() noexcept {
  // Once bus-off, counters freeze until reset().
  if (state() == ErrorState::kBusOff) return;
  tec_ += 8;
}

void ErrorCounters::on_receive_success() noexcept {
  if (rec_ > 0) --rec_;
}

void ErrorCounters::on_receive_error() noexcept {
  if (state() == ErrorState::kBusOff) return;
  rec_ += 1;
}

void ErrorCounters::reset() noexcept {
  tec_ = 0;
  rec_ = 0;
}

}  // namespace psme::can
