#include "can/bus.h"

#include <limits>

namespace psme::can {

Port::Port(Bus& bus, std::size_t index, std::string name)
    : bus_(bus), index_(index), name_(std::move(name)) {}

bool Port::submit(const Frame& frame) {
  if (!connected_ || pending_.has_value()) return false;
  pending_ = frame;
  bus_.kick();
  return true;
}

Bus::Bus(sim::Scheduler& sched, std::uint32_t bit_rate, sim::Trace* trace,
         std::uint64_t seed)
    : sched_(sched), bit_rate_(bit_rate), trace_(trace), rng_(seed) {
  if (bit_rate_ == 0) {
    throw std::invalid_argument("Bus: bit rate must be positive");
  }
}

Port& Bus::attach(std::string name) {
  ports_.push_back(std::make_unique<Port>(*this, ports_.size(), std::move(name)));
  return *ports_.back();
}

void Bus::kick() {
  // Defer arbitration to an event at the current time: several ports may
  // submit within the same instant, and all of them must compete.
  if (wire_busy_ || kick_scheduled_) return;
  kick_scheduled_ = true;
  sched_.schedule_in(sim::SimDuration::zero(), [this] {
    kick_scheduled_ = false;
    arbitrate();
  }, "can.bus.arbitrate");
}

void Bus::arbitrate() {
  if (wire_busy_) return;

  std::size_t winner = ports_.size();
  std::uint64_t best_key = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t best_tiebreak = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const Port& p = *ports_[i];
    if (!p.connected_ || !p.pending_.has_value()) continue;
    const std::uint64_t key = p.pending_->id().arbitration_key();
    // Two nodes transmitting the same identifier simultaneously is a
    // protocol violation; we resolve deterministically by port index so the
    // simulation stays reproducible (the attack module exploits this to
    // model spoofing races).
    if (key < best_key || (key == best_key && i < best_tiebreak)) {
      best_key = key;
      best_tiebreak = i;
      winner = i;
    }
  }
  if (winner == ports_.size()) return;  // nothing pending

  ++arbitration_rounds_;
  wire_busy_ = true;
  const Frame& frame = *ports_[winner]->pending_;
  const auto duration = bit_time() * static_cast<std::int64_t>(frame.wire_bits());
  busy_time_ += duration;
  trace(sim::TraceLevel::kDebug,
        ports_[winner]->name() + " wins arbitration: " + frame.to_string());
  sched_.schedule_in(duration, [this, winner] { complete(winner); },
                     "can.bus.complete");
}

void Bus::complete(std::size_t winner_index) {
  Port& tx = *ports_[winner_index];
  const Frame frame = *tx.pending_;
  tx.pending_.reset();
  wire_busy_ = false;

  const bool corrupted = rng_.chance(error_rate_);
  const sim::SimTime now = sched_.now();

  if (corrupted) {
    ++frames_corrupted_;
    trace(sim::TraceLevel::kError, "frame destroyed by bus error: " + frame.to_string());
    if (tx.sink_ != nullptr) tx.sink_->on_transmit_complete(frame, false, now);
  } else {
    ++frames_delivered_;
    const std::uint64_t id_key =
        (static_cast<std::uint64_t>(frame.id().is_extended()) << 32) |
        frame.id().raw();
    auto& counts = tx_by_id_[id_key];
    if (counts.size() < ports_.size()) counts.resize(ports_.size(), 0);
    ++counts[winner_index];
    if (tx.sink_ != nullptr) tx.sink_->on_transmit_complete(frame, true, now);
    // CAN is broadcast: every other connected node observes the frame.
    for (const auto& port : ports_) {
      if (port.get() == &tx || !port->connected_) continue;
      if (port->sink_ != nullptr) port->sink_->on_frame(frame, now);
    }
  }

  // Losers of the previous round (and the retransmitting sender) compete
  // again as soon as the wire is free.
  kick();
}

std::vector<std::uint64_t> Bus::tx_attribution(CanId id) const {
  const std::uint64_t id_key =
      (static_cast<std::uint64_t>(id.is_extended()) << 32) | id.raw();
  std::vector<std::uint64_t> counts(ports_.size(), 0);
  const auto it = tx_by_id_.find(id_key);
  if (it != tx_by_id_.end()) {
    for (std::size_t i = 0; i < it->second.size() && i < counts.size(); ++i) {
      counts[i] = it->second[i];
    }
  }
  return counts;
}

double Bus::utilisation() const noexcept {
  const auto elapsed = sched_.now();
  if (elapsed <= sim::SimTime::zero()) return 0.0;
  return static_cast<double>(busy_time_.count()) /
         static_cast<double>(elapsed.count());
}

void Bus::trace(sim::TraceLevel level, const std::string& msg) {
  if (trace_ != nullptr) trace_->record(sched_.now(), level, "can.bus", msg);
}

}  // namespace psme::can
