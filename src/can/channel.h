// psme::can — attachment-point interfaces.
//
// A Channel is what a CAN controller sees as "the bus": it can submit
// frames toward the wire and registers a FrameSink to receive deliveries.
// The Bus hands out Channel implementations (ports); security shims such
// as the hardware policy engine (psme::hpe) also implement Channel and
// wrap an inner one, which is exactly how the paper's Fig. 4 places the
// HPE between the CAN controller and the transceiver — transparently to
// node software.
#pragma once

#include "can/frame.h"
#include "sim/time.h"

namespace psme::can {

/// Receives frames delivered from the bus side.
class FrameSink {
 public:
  virtual ~FrameSink() = default;

  /// A frame observed on the bus (sent by some other node).
  virtual void on_frame(const Frame& frame, sim::SimTime at) = 0;

  /// The node's own pending transmission finished. `success` is false when
  /// the frame was destroyed by a (possibly injected) bus error; the
  /// data-link layer is then expected to retransmit.
  virtual void on_transmit_complete(const Frame& frame, bool success,
                                    sim::SimTime at) {
    (void)frame;
    (void)success;
    (void)at;
  }
};

/// Bidirectional attachment point toward the bus.
class Channel {
 public:
  virtual ~Channel() = default;

  /// Hands one frame to the wire side for arbitration. Returns false if the
  /// single hardware transmit slot is already occupied (caller should queue
  /// and retry on transmit completion) or if the frame was refused by a
  /// policy shim.
  virtual bool submit(const Frame& frame) = 0;

  /// Registers the delivery target. Passing nullptr detaches.
  virtual void set_sink(FrameSink* sink) = 0;

  /// True while a submitted frame is awaiting or undergoing transmission.
  [[nodiscard]] virtual bool busy() const = 0;
};

}  // namespace psme::can
