// psme::can — base class for application nodes attached to the bus.
//
// A Node pairs a Controller with an application "processor" (the virtual
// handle_frame). Car components (psme::car) and attacker models
// (psme::attack) both derive from this.
#pragma once

#include <string>

#include "can/controller.h"
#include "sim/event_queue.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace psme::can {

class Node {
 public:
  /// `channel` is the node's attachment toward the bus. When a hardware
  /// policy engine protects the node, the HPE object is passed here and
  /// wraps the real port — node code is identical either way, which is the
  /// transparency property claimed in the paper.
  Node(sim::Scheduler& sched, Channel& channel, std::string name,
       sim::Trace* trace = nullptr, std::uint64_t rng_seed = 7);
  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Controller& controller() noexcept { return controller_; }
  [[nodiscard]] const Controller& controller() const noexcept {
    return controller_;
  }

 protected:
  /// Application handler; called for every frame the controller accepts.
  virtual void handle_frame(const Frame& frame, sim::SimTime at) {
    (void)frame;
    (void)at;
  }

  /// Queues a frame for transmission via the controller.
  bool send(const Frame& frame) { return controller_.transmit(frame); }

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }

  void trace(sim::TraceLevel level, const std::string& msg);

 private:
  sim::Scheduler& sched_;
  std::string name_;
  sim::Trace* trace_;
  sim::Rng rng_;
  Controller controller_;
};

}  // namespace psme::can
