// psme::can — shared CAN bus with bitwise-priority arbitration.
//
// The bus models ISO 11898 medium access at frame granularity:
//  * when the wire goes idle, all ports with a pending frame enter
//    arbitration and the lowest arbitration key (most dominant bits) wins;
//  * the winning frame occupies the wire for its exact stuffed bit length
//    at the configured bit rate;
//  * on completion the frame is broadcast to every other attached port
//    (CAN is a broadcast medium — the paper's Sec. V notes this is the root
//    of the security problem);
//  * an error-injection hook can destroy frames in flight, which exercises
//    CRC/error-counter handling in the controllers.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "can/channel.h"
#include "can/frame.h"
#include "sim/event_queue.h"
#include "sim/metrics.h"
#include "sim/rng.h"
#include "sim/trace.h"

namespace psme::can {

/// Nominal bit rates commonly used on automotive buses.
inline constexpr std::uint32_t kBitRate500k = 500'000;  // high-speed CAN
inline constexpr std::uint32_t kBitRate125k = 125'000;  // comfort/body CAN

class Bus;

/// A physical attachment point on the bus. Created via Bus::attach().
class Port final : public Channel {
 public:
  Port(Bus& bus, std::size_t index, std::string name);

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  bool submit(const Frame& frame) override;
  void set_sink(FrameSink* sink) override { sink_ = sink; }
  [[nodiscard]] bool busy() const override { return pending_.has_value(); }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  /// Disconnects the port: no further submissions or deliveries. Models a
  /// node physically removed or in bus-off state.
  void disconnect() noexcept { connected_ = false; }
  void reconnect() noexcept { connected_ = true; }
  [[nodiscard]] bool connected() const noexcept { return connected_; }

 private:
  friend class Bus;

  Bus& bus_;
  std::size_t index_;
  std::string name_;
  FrameSink* sink_ = nullptr;
  std::optional<Frame> pending_;
  bool connected_ = true;
};

/// The shared differential pair. Owns its ports.
class Bus {
 public:
  /// `trace` may be nullptr (no tracing).
  Bus(sim::Scheduler& sched, std::uint32_t bit_rate = kBitRate500k,
      sim::Trace* trace = nullptr, std::uint64_t seed = 1);

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Attaches a new port. The reference stays valid for the bus lifetime.
  Port& attach(std::string name);

  [[nodiscard]] std::size_t port_count() const noexcept { return ports_.size(); }
  [[nodiscard]] Port& port(std::size_t i) { return *ports_.at(i); }

  [[nodiscard]] std::uint32_t bit_rate() const noexcept { return bit_rate_; }
  [[nodiscard]] sim::SimDuration bit_time() const noexcept {
    return sim::SimDuration{1'000'000'000ULL / bit_rate_};
  }

  /// Probability in [0,1] that any frame in flight is destroyed by a bus
  /// error (EMI model / deliberate error injection by the attack module).
  void set_error_rate(double p) noexcept { error_rate_ = p; }

  /// Fraction of wire-busy time over total elapsed time since construction.
  [[nodiscard]] double utilisation() const noexcept;

  /// Aggregate statistics.
  [[nodiscard]] std::uint64_t frames_delivered() const noexcept {
    return frames_delivered_;
  }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept {
    return frames_corrupted_;
  }
  [[nodiscard]] std::uint64_t arbitration_rounds() const noexcept {
    return arbitration_rounds_;
  }

  /// Per-port attribution of successful transmissions of `id`: entry i is
  /// how many frames carrying `id` port i has put on the wire so far. On a
  /// broadcast medium the receivers cannot tell transmitters apart, but the
  /// wire itself can — this is the physical-layer evidence a quarantine
  /// response layer uses to tell an attacker port spoofing a known id from
  /// the id's legitimate owner. Returns port_count() entries (all zero when
  /// the id was never transmitted).
  [[nodiscard]] std::vector<std::uint64_t> tx_attribution(CanId id) const;

  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return sched_; }

 private:
  friend class Port;

  /// Called by ports when a frame lands in an empty transmit slot.
  void kick();

  /// Starts arbitration if the wire is idle and a frame is pending.
  void arbitrate();

  /// Completes the in-flight transmission: clears the winner's slot,
  /// notifies it, broadcasts to all other ports, then re-arbitrates.
  void complete(std::size_t winner_index);

  void trace(sim::TraceLevel level, const std::string& msg);

  sim::Scheduler& sched_;
  std::uint32_t bit_rate_;
  sim::Trace* trace_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<Port>> ports_;
  bool wire_busy_ = false;
  bool kick_scheduled_ = false;
  double error_rate_ = 0.0;
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_corrupted_ = 0;
  std::uint64_t arbitration_rounds_ = 0;
  /// id key -> per-port successful-transmission counts (see tx_attribution).
  std::map<std::uint64_t, std::vector<std::uint64_t>> tx_by_id_;
  sim::SimDuration busy_time_{0};
};

}  // namespace psme::can
