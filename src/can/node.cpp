#include "can/node.h"

namespace psme::can {

Node::Node(sim::Scheduler& sched, Channel& channel, std::string name,
           sim::Trace* trace, std::uint64_t rng_seed)
    : sched_(sched),
      name_(std::move(name)),
      trace_(trace),
      rng_(rng_seed),
      controller_(sched, channel, name_, trace) {
  controller_.set_rx_handler(
      [this](const Frame& f, sim::SimTime at) { handle_frame(f, at); });
}

void Node::trace(sim::TraceLevel level, const std::string& msg) {
  if (trace_ != nullptr) {
    trace_->record(sched_.now(), level, "node." + name_, msg);
  }
}

}  // namespace psme::can
