// psme::can — CAN fault-confinement state machine (ISO 11898-1 §12).
//
// Every controller keeps a transmit error counter (TEC) and a receive error
// counter (REC). Nodes move between error-active, error-passive and bus-off
// states based on counter thresholds; bus-off nodes may not transmit. The
// attack framework relies on this to model denial-of-service through
// deliberate error injection.
#pragma once

#include <cstdint>
#include <string_view>

namespace psme::can {

enum class ErrorState : std::uint8_t {
  kErrorActive,   // normal participation
  kErrorPassive,  // TEC or REC exceeded 127: may still communicate
  kBusOff,        // TEC exceeded 255: disconnected until reset
};

[[nodiscard]] std::string_view to_string(ErrorState state) noexcept;

/// TEC/REC bookkeeping with the standard increments: +8 on an error as
/// transmitter, +1 as receiver, -1 on success (floored at 0).
class ErrorCounters {
 public:
  [[nodiscard]] std::uint32_t tec() const noexcept { return tec_; }
  [[nodiscard]] std::uint32_t rec() const noexcept { return rec_; }
  [[nodiscard]] ErrorState state() const noexcept;

  [[nodiscard]] bool can_transmit() const noexcept {
    return state() != ErrorState::kBusOff;
  }

  void on_transmit_success() noexcept;
  void on_transmit_error() noexcept;
  void on_receive_success() noexcept;
  void on_receive_error() noexcept;

  /// Models the bus-off recovery sequence (128 × 11 recessive bits) having
  /// completed: counters are cleared and the node re-enters error-active.
  void reset() noexcept;

 private:
  std::uint32_t tec_ = 0;
  std::uint32_t rec_ = 0;
};

}  // namespace psme::can
