// psme::can — CAN data link layer frame model (ISO 11898-1).
//
// Models the fields that matter to policy enforcement and to faithful bus
// timing: identifier (11-bit base or 29-bit extended), RTR, DLC, payload,
// the real CRC-15 polynomial, and the actual bit-stuffed frame length used
// to compute transmission time on the simulated bus.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace psme::can {

/// CAN identifier. Standard frames carry 11 bits, extended frames 29.
/// Lower numeric values are higher priority during arbitration (a 0 bit is
/// dominant on the wire).
class CanId {
 public:
  static constexpr std::uint32_t kMaxStandard = 0x7FF;
  static constexpr std::uint32_t kMaxExtended = 0x1FFF'FFFF;

  constexpr CanId() noexcept = default;

  /// Standard (11-bit) identifier. Throws std::out_of_range if raw > 0x7FF.
  static CanId standard(std::uint32_t raw);

  /// Extended (29-bit) identifier. Throws std::out_of_range if raw > 0x1FFFFFFF.
  static CanId extended(std::uint32_t raw);

  [[nodiscard]] constexpr std::uint32_t raw() const noexcept { return raw_; }
  [[nodiscard]] constexpr bool is_extended() const noexcept { return extended_; }

  /// Arbitration sort key: the frame whose arbitration field has the first
  /// dominant (0) bit where the other has recessive (1) wins. For frames of
  /// mixed format sharing the 11-bit prefix, standard wins over extended
  /// (the IDE bit of a standard frame is dominant).
  [[nodiscard]] std::uint64_t arbitration_key() const noexcept;

  [[nodiscard]] std::string to_string() const;

  friend constexpr bool operator==(CanId a, CanId b) noexcept = default;
  friend constexpr auto operator<=>(CanId a, CanId b) noexcept {
    // Ordering is by bus priority: a < b means a wins arbitration over b.
    const std::uint64_t ka = a.arbitration_key_constexpr();
    const std::uint64_t kb = b.arbitration_key_constexpr();
    return ka <=> kb;
  }

 private:
  constexpr CanId(std::uint32_t raw, bool extended) noexcept
      : raw_(raw), extended_(extended) {}

  [[nodiscard]] constexpr std::uint64_t arbitration_key_constexpr() const noexcept {
    // Standard: 11 id bits, then IDE=0 (dominant).
    // Extended: 11 base bits, SRR=1, IDE=1, then 18 extension bits.
    if (!extended_) {
      return (static_cast<std::uint64_t>(raw_) << 20);  // 11 bits | 0....
    }
    const std::uint64_t base = (raw_ >> 18) & 0x7FF;
    const std::uint64_t ext = raw_ & 0x3FFFF;
    return (base << 20) | (0b11ULL << 18) | ext;
  }

  std::uint32_t raw_ = 0;
  bool extended_ = false;
};

/// A CAN 2.0 frame. DLC is limited to the classic 0..8 bytes.
class Frame {
 public:
  static constexpr std::size_t kMaxData = 8;

  Frame() = default;

  /// Data frame. Throws std::length_error if data.size() > 8.
  Frame(CanId id, std::span<const std::uint8_t> data);

  /// Remote transmission request frame (no payload; dlc conveys the
  /// requested length).
  static Frame remote(CanId id, std::uint8_t dlc);

  [[nodiscard]] CanId id() const noexcept { return id_; }
  [[nodiscard]] bool is_remote() const noexcept { return rtr_; }
  [[nodiscard]] std::uint8_t dlc() const noexcept { return dlc_; }
  [[nodiscard]] std::span<const std::uint8_t> data() const noexcept {
    return {data_.data(), rtr_ ? 0u : dlc_};
  }

  /// First payload byte or 0 — common idiom for command frames.
  [[nodiscard]] std::uint8_t byte0() const noexcept {
    return (rtr_ || dlc_ == 0) ? 0 : data_[0];
  }

  /// CRC-15 over SOF..data as transmitted (polynomial x^15+x^14+x^10+x^8+
  /// x^7+x^4+x^3+1, i.e. 0x4599), per ISO 11898-1.
  [[nodiscard]] std::uint16_t crc15() const noexcept;

  /// Exact number of bits on the wire including stuff bits, CRC, ACK, EOF
  /// and the 3-bit interframe space. Determines transmission time.
  [[nodiscard]] std::size_t wire_bits() const noexcept;

  /// "id=0x123 dlc=8 [de ad be ef ...]" for traces.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Frame& a, const Frame& b) noexcept = default;

 private:
  void append_bitstream(std::vector<bool>& bits) const;

  CanId id_{};
  bool rtr_ = false;
  std::uint8_t dlc_ = 0;
  std::array<std::uint8_t, kMaxData> data_{};
};

/// Convenience builder for command-style frames: id + opcode + up to 7 args.
[[nodiscard]] Frame make_frame(std::uint32_t standard_id,
                               std::initializer_list<std::uint8_t> bytes);

}  // namespace psme::can
