#include "can/wire_mac.h"

#include <algorithm>
#include <stdexcept>

#include "mac/mac_engine.h"

namespace psme::can {

namespace {

[[nodiscard]] std::uint64_t flow_key_of(CanId id) noexcept {
  return (static_cast<std::uint64_t>(id.is_extended()) << 32) | id.raw();
}

}  // namespace

std::string_view to_string(WireDropReason reason) noexcept {
  switch (reason) {
    case WireDropReason::kPolicyDenied: return "policy-denied";
    case WireDropReason::kUnbound: return "unbound";
    case WireDropReason::kFlowDenied: return "flow-denied";
    case WireDropReason::kMalformedIsoTp: return "malformed-isotp";
    case WireDropReason::kFlowTimeout: return "flow-timeout";
    case WireDropReason::kCount: break;
  }
  return "invalid";
}

// -- WireBindingTable::Builder --------------------------------------------

WireBindingTable::Builder& WireBindingTable::Builder::pass_standard(
    std::uint32_t id) {
  return pass_standard_range(id, id);
}

WireBindingTable::Builder& WireBindingTable::Builder::pass_standard_range(
    std::uint32_t first, std::uint32_t last) {
  if (first > last || last > CanId::kMaxStandard) {
    throw std::invalid_argument("WireBindingTable: bad standard id range");
  }
  for (std::uint32_t id = first; id <= last; ++id) {
    table_.std_slots_[id] = kPassSlot;
  }
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::pass_pgn(
    std::uint32_t pgn) {
  table_.pgn_slots_[pgn] = kPassSlot;
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::bind_standard(
    std::uint32_t id, std::span<const mac::Sid> subjects, mac::Sid object,
    core::AccessType access, bool isotp) {
  if (id > CanId::kMaxStandard) {
    throw std::invalid_argument("WireBindingTable: standard id > 0x7FF");
  }
  if (subjects.empty()) {
    throw std::invalid_argument(
        "WireBindingTable: standard binding needs at least one subject");
  }
  Binding b;
  b.object = object;
  b.access = access;
  b.subject_offset = static_cast<std::uint32_t>(table_.subjects_.size());
  b.subject_count = static_cast<std::uint16_t>(subjects.size());
  b.isotp = isotp;
  table_.subjects_.insert(table_.subjects_.end(), subjects.begin(),
                          subjects.end());
  table_.max_subjects_ = std::max(table_.max_subjects_, subjects.size());
  table_.std_slots_[id] = static_cast<std::int32_t>(table_.bindings_.size());
  table_.bindings_.push_back(b);
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::bind_pgn(
    std::uint32_t pgn, std::span<const mac::Sid> subjects, mac::Sid object,
    core::AccessType access, bool isotp) {
  Binding b;
  b.object = object;
  b.access = access;
  b.subject_offset = static_cast<std::uint32_t>(table_.subjects_.size());
  b.subject_count = static_cast<std::uint16_t>(subjects.size());
  b.isotp = isotp;
  table_.subjects_.insert(table_.subjects_.end(), subjects.begin(),
                          subjects.end());
  table_.max_subjects_ =
      std::max<std::size_t>(table_.max_subjects_,
                            subjects.empty() ? 1 : subjects.size());
  table_.pgn_slots_[pgn] = static_cast<std::int32_t>(table_.bindings_.size());
  table_.bindings_.push_back(b);
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::j1939_source(
    std::uint8_t address, mac::Sid subject) {
  table_.j1939_sources_[address] = subject;
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::set_mode(
    mac::Sid mode_sid) {
  table_.mode_sid_ = mode_sid;
  return *this;
}

WireBindingTable::Builder& WireBindingTable::Builder::set_unbound_allowed(
    bool allowed) {
  table_.unbound_allowed_ = allowed;
  return *this;
}

WireBindingTable WireBindingTable::Builder::build() {
  return std::move(table_);
}

// -- WireMac ---------------------------------------------------------------

WireMac::WireMac(WireBindingTable table, const mac::MacEngine& engine)
    : table_(std::move(table)), engine_(&engine) {}

WireMac::WireMac(WireBindingTable table,
                 const core::CompiledPolicyImage& image)
    : table_(std::move(table)), image_(&image) {}

void WireMac::backend_evaluate(std::span<const core::SidRequest> requests,
                               std::span<std::uint8_t> out) {
  if (engine_ != nullptr) {
    engine_->evaluate_batch_allowed_shared(requests, out);
  } else {
    image_->evaluate_batch_allowed(requests, out);
  }
}

void WireMac::count_drop(const Frame& frame, WireDropReason reason,
                         sim::SimTime at) {
  ++drops_by_reason_[static_cast<std::size_t>(reason)];
  switch (reason) {
    case WireDropReason::kPolicyDenied: ++stats_.denied; break;
    case WireDropReason::kUnbound: ++stats_.unbound; break;
    case WireDropReason::kFlowDenied: ++stats_.flow_denied_frames; break;
    case WireDropReason::kMalformedIsoTp: ++stats_.isotp_errors; break;
    case WireDropReason::kFlowTimeout:
    case WireDropReason::kCount: break;
  }
  if (drop_sink_ != nullptr) drop_sink_->on_wire_drop(frame, reason, at);
}

void WireMac::expire_flows(sim::SimTime now) {
  for (const CanId id : reassembler_.expire(now)) {
    flow_verdicts_.erase(flow_key_of(id));
    ++stats_.flow_timeouts;
    ++drops_by_reason_[static_cast<std::size_t>(WireDropReason::kFlowTimeout)];
  }
}

WireMac::Plan WireMac::classify(const Frame& frame, sim::SimTime at) {
  Plan plan;
  const CanId id = frame.id();

  std::int32_t slot;
  std::span<const mac::Sid> subjects;
  mac::Sid j1939_single = mac::kNullSid;
  if (!id.is_extended()) {
    slot = table_.standard_slot(id.raw());
  } else {
    const J1939Id j = J1939Id::decompose(id.raw());
    slot = table_.pgn_slot(j.pgn);
    if (slot >= 0 && table_.binding(slot).subject_count == 0) {
      j1939_single = table_.j1939_subject(j.src);
      if (j1939_single == mac::kNullSid) slot = WireBindingTable::kUnboundSlot;
    }
  }

  if (slot == WireBindingTable::kPassSlot) {
    plan.kind = Plan::Kind::kPass;
    return plan;
  }
  if (slot == WireBindingTable::kUnboundSlot) {
    if (table_.unbound_allowed()) {
      plan.kind = Plan::Kind::kPass;
    } else {
      plan.kind = Plan::Kind::kDrop;
      plan.reason = WireDropReason::kUnbound;
    }
    return plan;
  }

  const WireBindingTable::Binding& binding = table_.binding(slot);
  if (binding.subject_count != 0) subjects = table_.subjects_of(binding);

  const auto emit_lanes = [&]() {
    plan.kind = Plan::Kind::kAdjudicate;
    plan.lane_offset = static_cast<std::uint32_t>(lanes_.size());
    const mac::Sid mode = table_.mode_sid();
    if (binding.subject_count == 0) {
      plan.lane_count = 1;
      lanes_.push_back(core::SidRequest{j1939_single, binding.object,
                                        binding.access, mode});
      return;
    }
    plan.lane_count = binding.subject_count;
    for (const mac::Sid subject : subjects) {
      lanes_.push_back(
          core::SidRequest{subject, binding.object, binding.access, mode});
    }
  };

  if (!binding.isotp) {
    emit_lanes();
    return plan;
  }

  // ISO-TP id: the transport state machine decides whether this frame
  // buys a verdict (SF, FF) or rides the flow's (CF).
  const std::uint64_t key = flow_key_of(id);
  const IsoTpReassembler::Event event = reassembler_.feed(frame, at);
  switch (event.kind) {
    case IsoTpReassembler::EventKind::kMessageComplete:
      if (event.message != nullptr && isotp_frame_type(frame) ==
                                          IsoTpFrameType::kSingle) {
        // A whole message in one frame adjudicates like a plain frame;
        // it also tore down any half-open flow on the id.
        flow_verdicts_.erase(key);
        batch_flow_leaders_.erase(key);
        emit_lanes();
        return plan;
      }
      // Final CF: inherit the flow verdict, then forget the flow.
      plan.flow_op = Plan::FlowOp::kComplete;
      [[fallthrough]];
    case IsoTpReassembler::EventKind::kPayloadFrame: {
      plan.flow_key = key;
      const auto leader = batch_flow_leaders_.find(key);
      if (leader != batch_flow_leaders_.end()) {
        plan.kind = Plan::Kind::kInheritFlow;
        plan.flow_leader = leader->second;
        if (plan.flow_op == Plan::FlowOp::kComplete) {
          batch_flow_leaders_.erase(leader);
        }
        return plan;
      }
      const auto verdict = flow_verdicts_.find(key);
      if (verdict == flow_verdicts_.end()) {
        // Conversation open but no verdict: impossible via this class's
        // own bookkeeping; fail closed if it ever happens.
        plan.kind = Plan::Kind::kDrop;
        plan.reason = WireDropReason::kFlowDenied;
        return plan;
      }
      plan.kind = Plan::Kind::kCachedFlow;
      plan.cached_allowed = verdict->second;
      return plan;
    }
    case IsoTpReassembler::EventKind::kMessageStart:
      // The FF buys the flow's verdict; same-batch CFs inherit it by
      // frame index, later batches through flow_verdicts_.
      emit_lanes();
      plan.flow_op = Plan::FlowOp::kRecord;
      plan.flow_key = key;
      return plan;
    case IsoTpReassembler::EventKind::kError:
      flow_verdicts_.erase(key);
      batch_flow_leaders_.erase(key);
      plan.kind = Plan::Kind::kDrop;
      plan.reason = WireDropReason::kMalformedIsoTp;
      return plan;
    case IsoTpReassembler::EventKind::kNone:
      // Flow control: receiver pacing, carries no adjudicable payload.
      plan.kind = Plan::Kind::kPass;
      return plan;
  }
  plan.kind = Plan::Kind::kDrop;
  plan.reason = WireDropReason::kMalformedIsoTp;
  return plan;
}

bool WireMac::admit(const Frame& frame, sim::SimTime at) {
  std::uint8_t allowed = 0;
  adjudicate_batch({&frame, 1}, at, {&allowed, 1});
  return allowed != 0;
}

void WireMac::adjudicate_batch(std::span<const Frame> frames, sim::SimTime at,
                               std::span<std::uint8_t> allowed_out) {
  if (frames.size() != allowed_out.size()) {
    throw std::invalid_argument(
        "WireMac::adjudicate_batch: span lengths differ");
  }
  expire_flows(at);

  // Classify pass: one plan per frame, SID lanes accumulated for ONE
  // backend call.
  plans_.clear();
  lanes_.clear();
  batch_flow_leaders_.clear();
  plans_.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    Plan plan = classify(frames[i], at);
    if (plan.flow_op == Plan::FlowOp::kRecord) {
      batch_flow_leaders_[plan.flow_key] = static_cast<std::uint32_t>(i);
    }
    plans_.push_back(plan);
  }

  lane_verdicts_.resize(lanes_.size());
  if (!lanes_.empty()) {
    backend_evaluate(lanes_, lane_verdicts_);
  }

  // Apply pass: resolve each plan to a verdict, in stream order so flow
  // bookkeeping (record, inherit, complete) sees a consistent timeline.
  stats_.frames += frames.size();
  stats_.sid_requests += lanes_.size();
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const Plan& plan = plans_[i];
    bool allowed = false;
    switch (plan.kind) {
      case Plan::Kind::kPass:
        allowed = true;
        ++stats_.passed;
        break;
      case Plan::Kind::kDrop:
        count_drop(frames[i], plan.reason, at);
        break;
      case Plan::Kind::kAdjudicate: {
        ++stats_.adjudicated;
        for (std::uint32_t lane = plan.lane_offset;
             lane < plan.lane_offset + plan.lane_count; ++lane) {
          if (lane_verdicts_[lane] != 0) {
            allowed = true;
            break;
          }
        }
        if (plan.flow_op == Plan::FlowOp::kRecord) {
          flow_verdicts_[plan.flow_key] = allowed;
          ++stats_.flow_starts;
        }
        if (!allowed) count_drop(frames[i], WireDropReason::kPolicyDenied, at);
        break;
      }
      case Plan::Kind::kInheritFlow:
      case Plan::Kind::kCachedFlow: {
        allowed = plan.kind == Plan::Kind::kInheritFlow
                      ? allowed_out[plan.flow_leader] != 0
                      : plan.cached_allowed;
        if (allowed) {
          ++stats_.flow_frames;
        } else {
          count_drop(frames[i], WireDropReason::kFlowDenied, at);
        }
        if (plan.flow_op == Plan::FlowOp::kComplete) {
          flow_verdicts_.erase(plan.flow_key);
        }
        break;
      }
    }
    if (allowed) ++stats_.allowed;
    allowed_out[i] = allowed ? 1 : 0;
  }
}

}  // namespace psme::can
