// psme::can — wire-rate mandatory access control at controller ingress.
//
// The request-level MAC answers "may entry point E access asset A?"; the
// paper's promise is enforcement ON the traffic. WireMac closes the gap:
// it classifies every received CAN frame into the policy's SID space —
// 11-bit ids through a dense O(1) binding table, 29-bit J1939 ids by
// src/dest/PGN decomposition — and adjudicates whole bus batches through
// the vectorised verdict-only decision core, so the hot path never
// materialises a Decision object or touches a string.
//
// Classification maps an identifier to (candidate subjects, object,
// access). Candidate subjects encode the binding layer's ∃-semantics
// directly on the wire: a command id is legitimate iff SOME entry point
// may write the asset, so the binding lists every plausible commander
// and the wire verdict is the OR of the per-candidate policy answers —
// all candidates ride the same batch, so the OR costs no extra backend
// calls, only extra lanes.
//
// Multi-frame ISO-TP conversations are adjudicated ONCE per flow: the
// FirstFrame buys a verdict, ConsecutiveFrames inherit it (allowed flows
// pass, denied flows drop every subsequent frame), FlowControl pacing
// passes untouched, and malformed transport frames drop with their own
// reason. Denied means DROPPED at the controller before the application
// processor sees the frame, counted into ControllerStats::rx_wire_denied
// and reported per-frame to a WireDropSink (monitor::WireDropMonitor).
//
// Two interchangeable backends answer the batches:
//   * mac::MacEngine — via evaluate_batch_allowed_shared, the seqlock
//     concurrent-read path. Any number of per-bus WireMacs may share one
//     engine across threads while the owner reloads policy; each batch
//     pins one policy generation (never a mix).
//   * core::CompiledPolicyImage — via evaluate_batch_allowed, for sealed
//     per-bus images with mode gating (the table's mode SID stamps every
//     request). Immutable, so concurrent adjudication is trivially safe.
// One WireMac instance itself is single-threaded (it owns reassembly and
// flow-verdict state); concurrency is per-bus, one WireMac per bus.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "can/frame.h"
#include "can/isotp.h"
#include "core/policy.h"
#include "core/policy_image.h"
#include "mac/sid_table.h"
#include "sim/time.h"

namespace psme::mac {
class MacEngine;
}  // namespace psme::mac

namespace psme::can {

/// SAE J1939 29-bit identifier decomposition (priority / PGN / source,
/// PDU1 point-to-point vs PDU2 broadcast), mirroring the field layout
/// SavvyCAN's J1939ID viewer uses.
struct J1939Id {
  std::uint8_t priority = 0;  // bits 26..28
  std::uint8_t pf = 0;        // PDU format (bits 16..23)
  std::uint8_t ps = 0;        // PDU specific (bits 8..15)
  std::uint8_t src = 0;       // source address (bits 0..7)
  std::uint8_t dest = 0xFF;   // destination (PDU1 only; 0xFF = broadcast)
  std::uint32_t pgn = 0;      // parameter group number
  bool broadcast = false;     // PDU2 (pf >= 0xF0)

  [[nodiscard]] static constexpr J1939Id decompose(std::uint32_t raw29) noexcept {
    J1939Id id;
    id.priority = static_cast<std::uint8_t>((raw29 >> 26) & 0x7);
    id.pf = static_cast<std::uint8_t>((raw29 >> 16) & 0xFF);
    id.ps = static_cast<std::uint8_t>((raw29 >> 8) & 0xFF);
    id.src = static_cast<std::uint8_t>(raw29 & 0xFF);
    if (id.pf < 0xF0) {
      // PDU1: PS is a destination address, not part of the PGN.
      id.dest = id.ps;
      id.pgn = (raw29 >> 8) & 0x3FF00;
      id.broadcast = false;
    } else {
      id.dest = 0xFF;
      id.pgn = (raw29 >> 8) & 0x3FFFF;
      id.broadcast = true;
    }
    return id;
  }
};

/// Why the wire MAC dropped a frame.
enum class WireDropReason : std::uint8_t {
  kPolicyDenied = 0,  // classified, adjudicated, denied
  kUnbound,           // no binding for the id (deny-by-default)
  kFlowDenied,        // CF of an ISO-TP flow whose FF was denied
  kMalformedIsoTp,    // transport-layer garbage on an ISO-TP id
  kFlowTimeout,       // flow expired; stats-only (no frame to report)
  kCount,
};

[[nodiscard]] std::string_view to_string(WireDropReason reason) noexcept;

/// Receives one callback per frame the wire MAC drops. Implemented by
/// monitor::WireDropMonitor; lives in can:: so the monitor depends on
/// can and not vice versa.
class WireDropSink {
 public:
  virtual ~WireDropSink() = default;
  virtual void on_wire_drop(const Frame& frame, WireDropReason reason,
                            sim::SimTime at) = 0;
};

/// Compiled id→(subjects, object, access) map. Built once per (bus,
/// mode) by car::BindingCompiler::build_wire_table (or by hand in tests
/// and benches), then immutable — WireMac only reads it. Standard ids
/// resolve through a dense 2048-slot array (one load, no hashing);
/// extended ids decompose as J1939 and resolve by PGN, with the subject
/// optionally drawn from a per-source-address table.
class WireBindingTable {
 public:
  static constexpr std::int32_t kUnboundSlot = -1;
  static constexpr std::int32_t kPassSlot = -2;

  struct Binding {
    mac::Sid object = mac::kNullSid;
    core::AccessType access = core::AccessType::kRead;
    std::uint32_t subject_offset = 0;  // into subjects()
    std::uint16_t subject_count = 0;   // 0 => J1939 per-source subject
    bool isotp = false;                // id carries ISO-TP conversations
  };

  class Builder;

  WireBindingTable() { std_slots_.fill(kUnboundSlot); }

  /// Slot for a standard id: kPassSlot, kUnboundSlot, or binding index.
  [[nodiscard]] std::int32_t standard_slot(std::uint32_t id) const noexcept {
    return id < std_slots_.size() ? std_slots_[id] : kUnboundSlot;
  }
  /// Slot for a J1939 PGN.
  [[nodiscard]] std::int32_t pgn_slot(std::uint32_t pgn) const noexcept {
    const auto it = pgn_slots_.find(pgn);
    return it != pgn_slots_.end() ? it->second : kUnboundSlot;
  }
  [[nodiscard]] const Binding& binding(std::int32_t slot) const noexcept {
    return bindings_[static_cast<std::size_t>(slot)];
  }
  [[nodiscard]] std::span<const mac::Sid> subjects_of(
      const Binding& b) const noexcept {
    return {subjects_.data() + b.subject_offset, b.subject_count};
  }
  [[nodiscard]] mac::Sid j1939_subject(std::uint8_t address) const noexcept {
    return j1939_sources_[address];
  }
  [[nodiscard]] mac::Sid mode_sid() const noexcept { return mode_sid_; }
  [[nodiscard]] bool unbound_allowed() const noexcept {
    return unbound_allowed_;
  }
  [[nodiscard]] std::size_t binding_count() const noexcept {
    return bindings_.size();
  }
  /// Widest candidate-subject list of any binding (batch sizing aid).
  [[nodiscard]] std::size_t max_subjects() const noexcept {
    return max_subjects_;
  }

 private:
  std::array<std::int32_t, 2048> std_slots_{};
  std::unordered_map<std::uint32_t, std::int32_t> pgn_slots_;
  std::vector<Binding> bindings_;
  std::vector<mac::Sid> subjects_;
  std::array<mac::Sid, 256> j1939_sources_{};  // kNullSid = unmapped
  mac::Sid mode_sid_ = mac::kNullSid;
  bool unbound_allowed_ = false;
  std::size_t max_subjects_ = 0;
};

class WireBindingTable::Builder {
 public:
  /// Frame passes without adjudication (structural ids: mode change,
  /// NM window, fail-safe trigger).
  Builder& pass_standard(std::uint32_t id);
  Builder& pass_standard_range(std::uint32_t first, std::uint32_t last);
  Builder& pass_pgn(std::uint32_t pgn);

  /// Binds a standard id: the frame is allowed iff ANY subject in
  /// `subjects` may `access` `object`. Throws std::invalid_argument
  /// for an empty subject list or an id above 0x7FF.
  Builder& bind_standard(std::uint32_t id, std::span<const mac::Sid> subjects,
                         mac::Sid object, core::AccessType access,
                         bool isotp = false);

  /// Binds a J1939 PGN. With `subjects` empty the subject comes from
  /// the source-address table (j1939_source); unmapped sources are
  /// unbound.
  Builder& bind_pgn(std::uint32_t pgn, std::span<const mac::Sid> subjects,
                    mac::Sid object, core::AccessType access,
                    bool isotp = false);

  /// Maps a J1939 source address to its subject SID.
  Builder& j1939_source(std::uint8_t address, mac::Sid subject);

  /// Mode SID stamped on every request (image backend only; the
  /// engine backend ignores request modes). Default kNullSid =
  /// mode-independent.
  Builder& set_mode(mac::Sid mode_sid);

  /// When true, ids with no binding pass instead of dropping.
  /// Default false: deny-by-default, the paper's stance.
  Builder& set_unbound_allowed(bool allowed);

  [[nodiscard]] WireBindingTable build();

 private:
  WireBindingTable table_;
};

struct WireMacStats {
  std::uint64_t frames = 0;         // frames presented
  std::uint64_t passed = 0;         // structural pass-through
  std::uint64_t adjudicated = 0;    // frames that bought a policy verdict
  std::uint64_t sid_requests = 0;   // SID lanes sent to the backend
  std::uint64_t allowed = 0;        // frames admitted (any path)
  std::uint64_t denied = 0;         // policy denials (kPolicyDenied)
  std::uint64_t unbound = 0;        // deny-by-default drops
  std::uint64_t flow_starts = 0;    // ISO-TP flows adjudicated at the FF
  std::uint64_t flow_frames = 0;    // CFs riding an allowed flow verdict
  std::uint64_t flow_denied_frames = 0;  // CFs dropped under a denied flow
  std::uint64_t isotp_errors = 0;   // transport-layer drops
  std::uint64_t flow_timeouts = 0;  // flows expired awaiting a CF
};

/// The wire-rate adjudicator for one bus. See file comment.
class WireMac {
 public:
  /// Concurrent-shared backend: adjudicates through the engine's
  /// seqlock read path. The engine must outlive the WireMac; policy
  /// reloads on the owner thread are safe mid-batch.
  WireMac(WireBindingTable table, const mac::MacEngine& engine);

  /// Sealed-image backend: adjudicates through the image's staged batch
  /// pipeline with the table's mode SID stamped on every request.
  WireMac(WireBindingTable table, const core::CompiledPolicyImage& image);

  WireMac(const WireMac&) = delete;
  WireMac& operator=(const WireMac&) = delete;

  /// Adjudicates one frame (the controller ingress hook). True = admit.
  [[nodiscard]] bool admit(const Frame& frame, sim::SimTime at);

  /// Adjudicates a bus-sized batch: `allowed_out[i]` is 1 iff
  /// `frames[i]` is admitted. ONE backend batch call serves the whole
  /// span, so per-frame cost approaches the vectorised core's
  /// ns/decision. Byte-identical to per-frame admit() on the same
  /// stream (test-pinned). Throws std::invalid_argument when the spans
  /// differ in length.
  void adjudicate_batch(std::span<const Frame> frames, sim::SimTime at,
                        std::span<std::uint8_t> allowed_out);

  /// Expires ISO-TP flows idle past the reassembler's CF timeout and
  /// forgets their verdicts. admit()/adjudicate_batch() call this with
  /// their own timestamp, so explicit calls are only needed to force
  /// expiry while no traffic flows.
  void expire_flows(sim::SimTime now);

  void set_drop_sink(WireDropSink* sink) noexcept { drop_sink_ = sink; }

  [[nodiscard]] const WireMacStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const IsoTpStats& isotp_stats() const noexcept {
    return reassembler_.stats();
  }
  [[nodiscard]] const WireBindingTable& table() const noexcept {
    return table_;
  }
  /// Per-reason drop counters (index by WireDropReason).
  [[nodiscard]] const std::array<std::uint64_t,
                                 static_cast<std::size_t>(
                                     WireDropReason::kCount)>&
  drops_by_reason() const noexcept {
    return drops_by_reason_;
  }

 private:
  /// Per-frame adjudication plan, built by the classify pass.
  struct Plan {
    enum class Kind : std::uint8_t {
      kPass,        // structural allow, no verdict
      kDrop,        // verdict known without the backend (reason below)
      kAdjudicate,  // lanes [lane_offset, lane_offset+lane_count) decide
      kInheritFlow, // copy the verdict of frames[flow_leader] (same batch)
      kCachedFlow,  // verdict resolved from the cross-batch flow map
    };
    enum class FlowOp : std::uint8_t {
      kNone,      // no flow bookkeeping
      kRecord,    // store this frame's verdict under flow_key (FF)
      kComplete,  // forget flow_key's verdict after applying (final CF)
    };
    Kind kind = Kind::kPass;
    FlowOp flow_op = FlowOp::kNone;
    WireDropReason reason = WireDropReason::kPolicyDenied;
    std::uint32_t lane_offset = 0;
    std::uint16_t lane_count = 0;
    std::uint32_t flow_leader = 0;
    bool cached_allowed = false;
    std::uint64_t flow_key = 0;
  };

  void backend_evaluate(std::span<const core::SidRequest> requests,
                        std::span<std::uint8_t> out);

  /// Builds the plan and SID lanes for frames[i]; appends to lanes_.
  [[nodiscard]] Plan classify(const Frame& frame, sim::SimTime at);

  void count_drop(const Frame& frame, WireDropReason reason, sim::SimTime at);

  WireBindingTable table_;
  const mac::MacEngine* engine_ = nullptr;
  const core::CompiledPolicyImage* image_ = nullptr;

  IsoTpReassembler reassembler_;
  /// Verdict of the open ISO-TP flow on an id (key as in isotp.cpp).
  std::unordered_map<std::uint64_t, bool> flow_verdicts_;
  /// Flows whose FF sits in the CURRENT batch: flow key -> leader frame
  /// index, so same-batch CFs inherit a verdict not yet computed.
  std::unordered_map<std::uint64_t, std::uint32_t> batch_flow_leaders_;

  // Batch scratch, reused across calls.
  std::vector<Plan> plans_;
  std::vector<core::SidRequest> lanes_;
  std::vector<std::uint8_t> lane_verdicts_;

  WireDropSink* drop_sink_ = nullptr;
  WireMacStats stats_;
  std::array<std::uint64_t, static_cast<std::size_t>(WireDropReason::kCount)>
      drops_by_reason_{};
};

}  // namespace psme::can
