// psme::can — ISO 15765-2 (ISO-TP) transport-layer reassembly.
//
// Diagnostic and firmware payloads larger than one CAN frame travel as
// ISO-TP conversations: a FirstFrame announcing the total length, then
// ConsecutiveFrames carrying 7 bytes each under a 4-bit rolling sequence
// number, paced by FlowControl frames from the receiver. The wire MAC
// needs the conversation view — a 4 KiB firmware block must be
// adjudicated ONCE as a flow, not 587 times as unrelated frames — so
// this module provides a passive reassembler: it observes frames (it
// never transmits FlowControl itself; the simulated peers do) and turns
// them into message-start / message-complete events with strict sequence
// checking and receive-side (N_Cr) timeout expiry.
//
// Robustness contract: feed() accepts ANY frame, including adversarial
// garbage — malformed PCI nibbles, impossible lengths, truncated frames,
// RTR frames — and classifies it as an error event without undefined
// behaviour. test_isotp fuzzes this promise under ASan/UBSan.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "can/frame.h"
#include "sim/time.h"

namespace psme::can {

/// Largest payload one ISO-TP conversation can carry (12-bit FF length).
inline constexpr std::size_t kIsoTpMaxPayload = 4095;

/// Protocol control information: high nibble of the first payload byte.
enum class IsoTpFrameType : std::uint8_t {
  kSingle = 0,       // SF: whole payload (1..7 bytes) in one frame
  kFirst = 1,        // FF: opens a multi-frame conversation
  kConsecutive = 2,  // CF: next 1..7 payload bytes, 4-bit sequence
  kFlowControl = 3,  // FC: receiver pacing (CTS / WAIT / OVFLW)
  kInvalid = 4,      // reserved PCI nibble, RTR, or empty frame
};

[[nodiscard]] std::string_view to_string(IsoTpFrameType type) noexcept;

/// Why a frame was rejected or a conversation aborted.
enum class IsoTpError : std::uint8_t {
  kNone = 0,
  kMalformedPci,          // reserved PCI, impossible length, truncated frame
  kUnexpectedConsecutive, // CF with no conversation open on the id
  kWrongSequence,         // CF sequence number mismatch (aborts the flow)
  kOverlappingStart,      // FF while a conversation was already open
  kTimeout,               // conversation expired waiting for the next CF
};

[[nodiscard]] std::string_view to_string(IsoTpError error) noexcept;

/// One reassembled transport message.
struct IsoTpMessage {
  CanId id;
  std::vector<std::uint8_t> payload;
};

struct IsoTpStats {
  std::uint64_t frames = 0;          // frames fed
  std::uint64_t single = 0;          // valid SF frames
  std::uint64_t first = 0;           // valid FF frames (conversations opened)
  std::uint64_t consecutive = 0;     // valid, in-sequence CF frames
  std::uint64_t flow_control = 0;    // valid FC frames observed
  std::uint64_t completed = 0;       // conversations fully reassembled
  std::uint64_t malformed = 0;       // kMalformedPci events
  std::uint64_t wrong_sequence = 0;  // kWrongSequence aborts
  std::uint64_t unexpected_cf = 0;   // kUnexpectedConsecutive events
  std::uint64_t restarts = 0;        // kOverlappingStart restarts
  std::uint64_t timeouts = 0;        // conversations dropped by expire()
};

/// Passive per-identifier ISO-TP reassembler. Conversations are keyed by
/// the full CAN identifier (format bit included), so flows on distinct
/// ids interleave freely — the classic request/response id pair of a
/// diagnostic session reassembles as two independent conversations.
class IsoTpReassembler {
 public:
  /// Receive-side inter-CF timeout (ISO 15765-2 N_Cr; 1 s default).
  static constexpr sim::SimDuration kDefaultCfTimeout =
      std::chrono::milliseconds{1000};

  enum class EventKind : std::uint8_t {
    kNone = 0,         // frame consumed, nothing to report (e.g. FC)
    kMessageStart,     // valid FF opened (or restarted) a conversation
    kPayloadFrame,     // valid mid-conversation CF
    kMessageComplete,  // SF, or final CF: `message` holds the payload
    kError,            // `error` says why; offending flow (if any) aborted
  };

  struct Event {
    EventKind kind = EventKind::kNone;
    IsoTpError error = IsoTpError::kNone;
    /// Set only for kMessageComplete. Points into the reassembler; valid
    /// until the next feed()/expire()/reset() call.
    const IsoTpMessage* message = nullptr;
  };

  explicit IsoTpReassembler(sim::SimDuration cf_timeout = kDefaultCfTimeout)
      : cf_timeout_(cf_timeout) {}

  /// Classifies one frame and advances the conversation state machine.
  /// Never throws; adversarial input yields kError events.
  Event feed(const Frame& frame, sim::SimTime at);

  /// Aborts every conversation whose last frame is older than the CF
  /// timeout; returns the identifiers dropped (newest state first is not
  /// guaranteed). Call with a monotone clock; feed() does NOT expire.
  std::vector<CanId> expire(sim::SimTime now);

  [[nodiscard]] const IsoTpStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t open_conversations() const noexcept {
    return conversations_.size();
  }
  [[nodiscard]] sim::SimDuration cf_timeout() const noexcept {
    return cf_timeout_;
  }

  /// Drops all conversation state and the last completed message.
  void reset();

 private:
  struct Conversation {
    std::vector<std::uint8_t> payload;  // bytes received so far
    std::size_t expected_len = 0;
    std::uint8_t next_seq = 1;  // FF is implicitly sequence 0
    sim::SimTime last_activity{};
  };

  /// Opens (or restarts) the conversation for `key` from a validated FF.
  void open(std::uint64_t key, const Frame& frame, std::size_t len,
            sim::SimTime at);

  sim::SimDuration cf_timeout_;
  std::unordered_map<std::uint64_t, Conversation> conversations_;
  IsoTpMessage completed_;  // storage behind Event::message
  IsoTpStats stats_;
};

/// PCI classification of one frame (pure; no conversation state).
[[nodiscard]] IsoTpFrameType isotp_frame_type(const Frame& frame) noexcept;

/// Segments `payload` into the ISO-TP frame sequence a sender would emit
/// (SF for <= 7 bytes, otherwise FF + CFs with wrapping sequence
/// numbers). Throws std::length_error above kIsoTpMaxPayload and
/// std::invalid_argument for an empty payload. The inverse of
/// reassembly; tests and benches round-trip through it.
[[nodiscard]] std::vector<Frame> isotp_segment(
    CanId id, std::span<const std::uint8_t> payload);

}  // namespace psme::can
